//! Matrix multiplication — the paper's running example (Section 3).
//!
//! Three variants are provided, all operating on matrices in the bit-interleaved (BI) layout:
//!
//! * **depth-`n`, in-place** — recursively multiplies four pairs of half-size matrices writing
//!   directly into `C`, then four more pairs *adding* into `C`. Each output word is written
//!   `n / base` times, so this variant is **not** limited-access (the paper points this out
//!   and uses it as the motivating bad example for block-miss control).
//! * **depth-`n`, limited-access** — the paper's fix: every recursive call allocates a local
//!   array for its eight sub-products and a final addition pass writes each destination word
//!   exactly once. Space grows to `O(n² log p)` in the paper's accounting; here the local
//!   arrays live on execution-stack segments.
//! * **depth-`log² n`** — all eight sub-products are recursively computed in one parallel
//!   collection (into the local array), followed by the addition pass; `T∞ = O(log² n)`.
//!
//! The builders produce classified [`Computation`]s whose leaves are `base × base` block
//! multiplications carrying their exact read/write sets; the sequential references operate on
//! real `f64` data and validate the decomposition.

use crate::common::{balanced_levels, Dest};
use crate::layout::{bi_quadrant_offset, bit_interleave};
use rws_dag::builders::BalancedTreeBuilder;
use rws_dag::{AlgoMeta, Computation, NodeId, Shrink, SpDagBuilder, WorkUnit};
use serde::{Deserialize, Serialize};

/// Which matrix-multiply algorithm to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MmVariant {
    /// Depth-`n` recursion, accumulating in place (not limited-access).
    DepthNInPlace,
    /// Depth-`n` recursion with local result arrays (limited-access).
    DepthNLimitedAccess,
    /// Depth-`log² n` recursion (eight parallel sub-products, limited-access).
    DepthLog2N,
}

/// Configuration of a matrix-multiply computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatMulConfig {
    /// Matrix dimension (must be a power of two).
    pub n: usize,
    /// Base-case tile dimension (power of two, `<= n`).
    pub base: usize,
    /// Algorithm variant.
    pub variant: MmVariant,
}

impl MatMulConfig {
    /// A configuration with the given size and variant and a base case of 8 (or `n` if
    /// smaller).
    pub fn new(n: usize, variant: MmVariant) -> Self {
        MatMulConfig { n, base: 8.min(n), variant }
    }

    /// Builder-style: set the base-case size.
    pub fn with_base(mut self, base: usize) -> Self {
        self.base = base;
        self
    }

    fn validate(&self) {
        assert!(self.n.is_power_of_two(), "matrix dimension must be a power of two");
        assert!(self.base.is_power_of_two(), "base case must be a power of two");
        assert!(self.base >= 1 && self.base <= self.n);
    }
}

/// Global addresses of the three matrices (all BI-ordered, `n²` words each).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatMulLayout {
    /// Base address of `A`.
    pub a_base: u64,
    /// Base address of `B`.
    pub b_base: u64,
    /// Base address of `C`.
    pub c_base: u64,
}

impl MatMulLayout {
    /// The standard packing: `A`, `B`, `C` consecutively from address 0.
    pub fn packed(n: usize) -> Self {
        let n2 = (n * n) as u64;
        MatMulLayout { a_base: 0, b_base: n2, c_base: 2 * n2 }
    }
}

/// Build the matrix-multiply computation dag for `cfg`.
pub fn matmul_computation(cfg: &MatMulConfig) -> Computation {
    cfg.validate();
    let layout = MatMulLayout::packed(cfg.n);
    let mut b = SpDagBuilder::new();
    let mut mm = MmBuilder { b: &mut b, base: cfg.base, variant: cfg.variant };
    let root = mm.build_call(
        Dest::Global { base: layout.c_base },
        false,
        layout.a_base,
        layout.b_base,
        cfg.n,
        0,
    );
    let dag = b.build(root).expect("matmul dag must validate");
    let (name, limited, collections) = match cfg.variant {
        MmVariant::DepthNInPlace => ("matmul-depth-n-inplace", false, 2),
        MmVariant::DepthNLimitedAccess => ("matmul-depth-n-limited", true, 2),
        MmVariant::DepthLog2N => ("matmul-depth-log2n", true, 1),
    };
    let mut meta = AlgoMeta::hbp2(name, (cfg.n * cfg.n) as u64, collections, Shrink::Quarter)
        .with_base_case((cfg.base * cfg.base) as u64);
    meta.limited_access = limited;
    Computation::new(dag, meta)
}

struct MmBuilder<'a> {
    b: &'a mut SpDagBuilder,
    base: usize,
    variant: MmVariant,
}

impl<'a> MmBuilder<'a> {
    /// Build the call multiplying the `m × m` submatrices starting at BI offsets `a_start`
    /// and `b_start`, writing (or accumulating into) `dest`. `ctx_depth` is the absolute
    /// segment depth of the call site.
    fn build_call(
        &mut self,
        dest: Dest,
        accumulate: bool,
        a_start: u64,
        b_start: u64,
        m: usize,
        ctx_depth: u32,
    ) -> NodeId {
        if m <= self.base {
            return self.leaf(dest, accumulate, a_start, b_start, m, ctx_depth);
        }
        let h = m / 2;
        let s = (h * h) as u64;
        let aq = |q: u64| a_start + bi_quadrant_offset(q, m as u64);
        let bq = |q: u64| b_start + bi_quadrant_offset(q, m as u64);
        let dq = |q: u64| dest.offset(bi_quadrant_offset(q, m as u64));

        // The eight half-size products: C_q = P_q + P'_q with
        //   P_0 = A0·B0, P_1 = A0·B1, P_2 = A2·B0, P_3 = A2·B1   (first collection)
        //   P'_0 = A1·B2, P'_1 = A1·B3, P'_2 = A3·B2, P'_3 = A3·B3 (second collection)
        let first: [(u64, u64); 4] = [(0, 0), (0, 1), (2, 0), (2, 1)];
        let second: [(u64, u64); 4] = [(1, 2), (1, 3), (3, 2), (3, 3)];

        match self.variant {
            MmVariant::DepthNInPlace => {
                // Children sit under the (non-declaring) Seq plus two fork levels.
                let child_depth = ctx_depth + balanced_levels(4);
                let col1: Vec<NodeId> = first
                    .iter()
                    .enumerate()
                    .map(|(q, &(ai, bi))| {
                        self.build_call(dq(q as u64), accumulate, aq(ai), bq(bi), h, child_depth)
                    })
                    .collect();
                let col1 = self.combine(&col1);
                let col2: Vec<NodeId> = second
                    .iter()
                    .enumerate()
                    .map(|(q, &(ai, bi))| {
                        self.build_call(dq(q as u64), true, aq(ai), bq(bi), h, child_depth)
                    })
                    .collect();
                let col2 = self.combine(&col2);
                self.b.seq(vec![col1, col2])
            }
            MmVariant::DepthNLimitedAccess | MmVariant::DepthLog2N => {
                // The call's Seq node declares a local array of 8 half-size product matrices.
                let seq_depth = ctx_depth + 1;
                let local = |k: u64| Dest::Local {
                    depth: seq_depth,
                    offset: u32::try_from(k * s).expect("local array too large"),
                };
                let children_per_collection =
                    if self.variant == MmVariant::DepthLog2N { 8 } else { 4 };
                let child_depth = seq_depth + balanced_levels(children_per_collection);

                let mut parts: Vec<NodeId> = Vec::new();
                if self.variant == MmVariant::DepthLog2N {
                    let all: Vec<NodeId> = first
                        .iter()
                        .chain(second.iter())
                        .enumerate()
                        .map(|(k, &(ai, bi))| {
                            self.build_call(local(k as u64), false, aq(ai), bq(bi), h, child_depth)
                        })
                        .collect();
                    parts.push(self.combine(&all));
                } else {
                    let col1: Vec<NodeId> = first
                        .iter()
                        .enumerate()
                        .map(|(k, &(ai, bi))| {
                            self.build_call(local(k as u64), false, aq(ai), bq(bi), h, child_depth)
                        })
                        .collect();
                    parts.push(self.combine(&col1));
                    let col2: Vec<NodeId> = second
                        .iter()
                        .enumerate()
                        .map(|(k, &(ai, bi))| {
                            self.build_call(
                                local(4 + k as u64),
                                false,
                                aq(ai),
                                bq(bi),
                                h,
                                child_depth,
                            )
                        })
                        .collect();
                    parts.push(self.combine(&col2));
                }
                parts.push(self.addition_tree(dest, accumulate, seq_depth, s, m));
                self.b.seq_with_segment(parts, u32::try_from(8 * s).expect("segment too large"))
            }
        }
    }

    /// A `base × base` (or smaller) block multiply leaf.
    fn leaf(
        &mut self,
        dest: Dest,
        accumulate: bool,
        a_start: u64,
        b_start: u64,
        m: usize,
        ctx_depth: u32,
    ) -> NodeId {
        let m2 = (m * m) as u64;
        let at_depth = ctx_depth + 1; // the leaf's own (empty) segment
        let mut unit = WorkUnit::compute(2 * (m as u64) * (m as u64) * (m as u64))
            .reads((a_start..a_start + m2).map(rws_dag::Addr))
            .reads((b_start..b_start + m2).map(rws_dag::Addr));
        if accumulate {
            unit = dest.read_range(unit, 0..m2, at_depth);
        }
        unit = dest.write_range(unit, 0..m2, at_depth);
        self.b.leaf(unit)
    }

    /// The addition pass of the limited-access variants: `dest[q][e] = L[q·s + e] + L[(4+q)·s + e]`.
    fn addition_tree(
        &mut self,
        dest: Dest,
        accumulate: bool,
        seq_depth: u32,
        s: u64,
        m: usize,
    ) -> NodeId {
        let chunk = (s as usize).min(self.base * self.base) as u64;
        let chunks_per_quadrant = (s / chunk).max(1);
        let total_chunks = (4 * chunks_per_quadrant) as usize;
        let levels = balanced_levels(total_chunks);
        let leaf_depth = seq_depth + levels + 1;

        let mut leaves = Vec::with_capacity(total_chunks);
        for q in 0..4u64 {
            for c in 0..chunks_per_quadrant {
                let lo = c * chunk;
                let hi = lo + chunk;
                let l1 = Dest::Local {
                    depth: seq_depth,
                    offset: u32::try_from(q * s).expect("local offset"),
                };
                let l2 = Dest::Local {
                    depth: seq_depth,
                    offset: u32::try_from((4 + q) * s).expect("local offset"),
                };
                let dq = dest.offset(bi_quadrant_offset(q, m as u64));
                let mut unit = WorkUnit::compute(chunk);
                unit = l1.read_range(unit, lo..hi, leaf_depth);
                unit = l2.read_range(unit, lo..hi, leaf_depth);
                if accumulate {
                    unit = dq.read_range(unit, lo..hi, leaf_depth);
                }
                unit = dq.write_range(unit, lo..hi, leaf_depth);
                leaves.push(self.b.leaf(unit));
            }
        }
        self.combine(&leaves)
    }

    fn combine(&mut self, children: &[NodeId]) -> NodeId {
        BalancedTreeBuilder::new(self.b, 2).combine(
            children,
            |_, _| WorkUnit::compute(1),
            |_, _| WorkUnit::compute(1),
        )
    }
}

// ------------------------------------------------------------------------------------------
// Sequential references on real data
// ------------------------------------------------------------------------------------------

/// Naive `O(n³)` row-major matrix multiply (the correctness oracle).
pub fn matmul_reference(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    c
}

/// Convert a row-major matrix to the bit-interleaved layout.
pub fn to_bi(rm: &[f64], n: usize) -> Vec<f64> {
    let mut bi = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            bi[bit_interleave(i as u64, j as u64) as usize] = rm[i * n + j];
        }
    }
    bi
}

/// Convert a bit-interleaved matrix to row-major.
pub fn from_bi(bi: &[f64], n: usize) -> Vec<f64> {
    let mut rm = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            rm[i * n + j] = bi[bit_interleave(i as u64, j as u64) as usize];
        }
    }
    rm
}

/// Recursive eight-way matrix multiply on BI-ordered data — the same decomposition the dag
/// builders use, validated against [`matmul_reference`].
pub fn matmul_bi_reference(a_bi: &[f64], b_bi: &[f64], n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    mm_bi_rec(&mut c, a_bi, b_bi, n, false);
    c
}

/// Largest block the gathered micro-kernel handles: an 8×8 block is three levels of the
/// recursion, so stopping here removes the 8 quadrant `Vec` allocations per call over the
/// three hottest (most numerous) levels, and its 64-word operands fit comfortably in L1.
const MICRO: usize = 8;

/// The base-case block multiply: gather the bit-interleaved `m × m` operands (`m <=
/// MICRO`) into row-major stack buffers, run a classic i-k-j triple loop, scatter back.
///
/// The gather costs `2m²` extra moves but buys contiguous, constant-stride (`MICRO`-wide)
/// rows for the hot loop — the inner `j` loop reads `B`'s row and writes `C`'s row
/// sequentially, which the compiler unrolls and vectorizes, where the interleaved layout
/// forces a strided gather per multiply. Summation order within a block changes from the
/// recursive quadrant order to plain dot products; both are exact-sum reorderings well
/// inside the 1e-9 test tolerance.
fn mm_bi_micro(c: &mut [f64], a: &[f64], b: &[f64], m: usize, accumulate: bool) {
    debug_assert!(m <= MICRO && m.is_power_of_two());
    let mut ra = [0.0f64; MICRO * MICRO];
    let mut rb = [0.0f64; MICRO * MICRO];
    let mut rc = [0.0f64; MICRO * MICRO];
    for i in 0..m {
        for j in 0..m {
            let bi = bit_interleave(i as u64, j as u64) as usize;
            ra[i * MICRO + j] = a[bi];
            rb[i * MICRO + j] = b[bi];
        }
    }
    for i in 0..m {
        for k in 0..m {
            let aik = ra[i * MICRO + k];
            for j in 0..m {
                rc[i * MICRO + j] += aik * rb[k * MICRO + j];
            }
        }
    }
    for i in 0..m {
        for j in 0..m {
            let bi = bit_interleave(i as u64, j as u64) as usize;
            if accumulate {
                c[bi] += rc[i * MICRO + j];
            } else {
                c[bi] = rc[i * MICRO + j];
            }
        }
    }
}

fn mm_bi_rec(c: &mut [f64], a: &[f64], b: &[f64], m: usize, accumulate: bool) {
    if m <= MICRO {
        mm_bi_micro(c, a, b, m, accumulate);
        return;
    }
    let s = (m / 2) * (m / 2);
    // Quadrants are contiguous in BI order: [TL, TR, BL, BR].
    let quads = |x: &[f64], q: usize| -> Vec<f64> { x[q * s..(q + 1) * s].to_vec() };
    let a0 = quads(a, 0);
    let a1 = quads(a, 1);
    let a2 = quads(a, 2);
    let a3 = quads(a, 3);
    let b0 = quads(b, 0);
    let b1 = quads(b, 1);
    let b2 = quads(b, 2);
    let b3 = quads(b, 3);
    let pairs: [(usize, &[f64], &[f64], bool); 8] = [
        (0, &a0, &b0, accumulate),
        (1, &a0, &b1, accumulate),
        (2, &a2, &b0, accumulate),
        (3, &a2, &b1, accumulate),
        (0, &a1, &b2, true),
        (1, &a1, &b3, true),
        (2, &a3, &b2, true),
        (3, &a3, &b3, true),
    ];
    for (q, ax, bx, acc) in pairs {
        let (lo, hi) = (q * s, (q + 1) * s);
        mm_bi_rec(&mut c[lo..hi], ax, bx, m / 2, acc);
    }
}

/// Native fork-join matrix multiply on the `rws-runtime` work-stealing pool.
///
/// The same eight-way limited-access decomposition as the simulated
/// [`MmVariant::DepthLog2N`] variant: all eight half-size products are computed in one
/// parallel collection (each into its own freshly allocated result — no two parallel tasks
/// write the same destination), then paired sums produce the four output quadrants. Inputs
/// and output are in the bit-interleaved layout, where quadrants are contiguous, so the
/// recursion works on owned quadrant vectors. Call from inside
/// [`rws_runtime::ThreadPool::install`] for parallel execution; outside a pool worker the
/// `join`s degrade to sequential calls.
pub fn matmul_native_bi(a_bi: &[f64], b_bi: &[f64], n: usize, base: usize) -> Vec<f64> {
    assert!(n.is_power_of_two(), "matrix dimension must be a power of two");
    assert!(base.is_power_of_two() && base >= 1 && base <= n);
    assert_eq!(a_bi.len(), n * n);
    assert_eq!(b_bi.len(), n * n);
    mm_native(a_bi.to_vec(), b_bi.to_vec(), n, base)
}

type QuadPair = ((Vec<f64>, Vec<f64>), (Vec<f64>, Vec<f64>));

fn mm_native(a: Vec<f64>, b: Vec<f64>, m: usize, base: usize) -> Vec<f64> {
    use rws_runtime::join;

    if m <= base {
        return matmul_bi_reference(&a, &b, m);
    }
    let h = m / 2;
    let s = h * h;
    let quad = |x: &[f64], q: usize| x[q * s..(q + 1) * s].to_vec();
    // Output quadrant q needs two products: C_0 = A0·B0 + A1·B2, C_1 = A0·B1 + A1·B3,
    // C_2 = A2·B0 + A3·B2, C_3 = A2·B1 + A3·B3. Each product writes its own fresh vector
    // (limited access); the addition pass pairs them up afterwards.
    let mk = |ai: usize, bi: usize| (quad(&a, ai), quad(&b, bi));
    let [q0, q1, q2, q3]: [QuadPair; 4] =
        [(mk(0, 0), mk(1, 2)), (mk(0, 1), mk(1, 3)), (mk(2, 0), mk(3, 2)), (mk(2, 1), mk(3, 3))];

    // One output quadrant: its two half-size products in parallel, then the element sum.
    fn quadrant(pair: QuadPair, h: usize, base: usize) -> Vec<f64> {
        let ((a1, b1), (a2, b2)) = pair;
        let (x, y) = rws_runtime::join(
            move || mm_native(a1, b1, h, base),
            move || mm_native(a2, b2, h, base),
        );
        x.iter().zip(&y).map(|(u, v)| u + v).collect()
    }

    // All eight products run as one parallel collection via a three-level join tree.
    let ((c0, c1), (c2, c3)) = join(
        move || join(move || quadrant(q0, h, base), move || quadrant(q1, h, base)),
        move || join(move || quadrant(q2, h, base), move || quadrant(q3, h, base)),
    );
    // Quadrants are contiguous in the bit-interleaved layout.
    [c0, c1, c2, c3].concat()
}

/// Number of base-case leaves of the recursive decomposition: `(n / base)³`.
pub fn expected_leaf_count(n: usize, base: usize) -> u64 {
    let k = (n / base) as u64;
    k * k * k
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn random_matrix(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "{x} != {y}");
        }
    }

    #[test]
    fn native_runner_matches_naive_outside_a_pool() {
        // Outside a pool worker the joins run sequentially; correctness is identical.
        for (n, base) in [(4usize, 1usize), (8, 2), (16, 4)] {
            let a = random_matrix(n, 21 + n as u64);
            let b = random_matrix(n, 23 + n as u64);
            let expected = matmul_reference(&a, &b, n);
            let got_bi = matmul_native_bi(&to_bi(&a, n), &to_bi(&b, n), n, base);
            assert_close(&from_bi(&got_bi, n), &expected);
        }
    }

    #[test]
    fn bi_layout_roundtrip() {
        let n = 8;
        let m = random_matrix(n, 1);
        assert_close(&from_bi(&to_bi(&m, n), n), &m);
    }

    #[test]
    fn recursive_bi_multiply_matches_naive() {
        for n in [2usize, 4, 8, 16] {
            let a = random_matrix(n, 7 + n as u64);
            let b = random_matrix(n, 11 + n as u64);
            let expected = matmul_reference(&a, &b, n);
            let got = from_bi(&matmul_bi_reference(&to_bi(&a, n), &to_bi(&b, n), n), n);
            assert_close(&got, &expected);
        }
    }

    #[test]
    fn naive_multiply_identity() {
        let n = 4;
        let a = random_matrix(n, 3);
        let mut id = vec![0.0; n * n];
        for i in 0..n {
            id[i * n + i] = 1.0;
        }
        assert_close(&matmul_reference(&a, &id, n), &a);
        assert_close(&matmul_reference(&id, &a, n), &a);
    }

    fn check_structure(variant: MmVariant, n: usize, base: usize) -> Computation {
        let comp = matmul_computation(&MatMulConfig { n, base, variant });
        assert!(comp.check_properties().is_empty(), "{:?}", comp.check_properties());
        comp
    }

    #[test]
    fn limited_access_variant_writes_each_output_word_once() {
        let comp = check_structure(MmVariant::DepthNLimitedAccess, 16, 4);
        assert_eq!(comp.dag.max_writes_per_global_word(), 1);
        assert!(comp.meta.limited_access);
    }

    #[test]
    fn log2_variant_writes_each_output_word_once() {
        let comp = check_structure(MmVariant::DepthLog2N, 16, 4);
        assert_eq!(comp.dag.max_writes_per_global_word(), 1);
    }

    #[test]
    fn in_place_variant_is_not_limited_access() {
        let comp =
            matmul_computation(&MatMulConfig { n: 16, base: 4, variant: MmVariant::DepthNInPlace });
        assert!(comp.dag.max_writes_per_global_word() > 1);
        assert!(!comp.meta.limited_access);
    }

    #[test]
    fn work_scales_cubically() {
        let w8 = check_structure(MmVariant::DepthNLimitedAccess, 8, 2).dag.work();
        let w16 = check_structure(MmVariant::DepthNLimitedAccess, 16, 2).dag.work();
        let ratio = w16 as f64 / w8 as f64;
        assert!(ratio > 6.0 && ratio < 10.5, "doubling n should ~8x the work, got {ratio}");
    }

    #[test]
    fn leaf_count_matches_formula() {
        for (n, base) in [(8, 2), (16, 4), (16, 2)] {
            let comp = check_structure(MmVariant::DepthLog2N, n, base);
            // The dag also has addition leaves; multiply leaves alone are (n/base)^3. Addition
            // leaves are at most as numerous per level, so total leaves are between 1x and 3x.
            let mm_leaves = expected_leaf_count(n, base);
            let total = comp.dag.leaf_count();
            assert!(total >= mm_leaves, "at least the multiply leaves: {total} >= {mm_leaves}");
            assert!(total <= 3 * mm_leaves, "not too many extra leaves: {total} <= 3*{mm_leaves}");
        }
    }

    #[test]
    fn depth_n_has_much_larger_span_than_log2n() {
        let n = 32;
        let base = 2;
        let depth_n = check_structure(MmVariant::DepthNLimitedAccess, n, base).dag.span_nodes();
        let log2n = check_structure(MmVariant::DepthLog2N, n, base).dag.span_nodes();
        assert!(
            depth_n > 2 * log2n,
            "depth-n span ({depth_n}) must exceed depth-log²n span ({log2n}) substantially"
        );
    }

    #[test]
    fn global_footprint_is_three_matrices() {
        let n = 16;
        let comp = check_structure(MmVariant::DepthNLimitedAccess, n, 4);
        assert_eq!(comp.dag.global_footprint_words(), (3 * n * n) as u64);
    }

    #[test]
    fn base_case_equal_to_n_gives_single_leaf() {
        let comp = matmul_computation(&MatMulConfig {
            n: 8,
            base: 8,
            variant: MmVariant::DepthNLimitedAccess,
        });
        assert_eq!(comp.dag.leaf_count(), 1);
        assert_eq!(comp.dag.work(), 2 * 8 * 8 * 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        matmul_computation(&MatMulConfig { n: 12, base: 4, variant: MmVariant::DepthLog2N });
    }
}
