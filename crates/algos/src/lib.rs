//! # rws-algos
//!
//! The algorithm suite of *Analysis of Randomized Work Stealing with False Sharing* expressed
//! as series-parallel computations over the simulated memory of `rws-machine` / `rws-dag`,
//! plus plain sequential reference implementations on real data.
//!
//! Every algorithm module provides:
//!
//! * a **sequential reference** working on ordinary Rust slices/vectors (tested for
//!   correctness the usual way), and
//! * a **dag builder** returning a classified [`rws_dag::Computation`] whose nodes carry the
//!   algorithm's memory-access structure (global-array addresses plus symbolic
//!   execution-stack accesses), ready to be scheduled by `rws-core` and measured, and
//! * for the flagship workloads ([`matmul`], [`prefix`], [`sort`]) a **native fork-join
//!   runner** built on [`rws_runtime::join`], mirroring the dag's decomposition on real
//!   hardware so the `rws-exec` `Executor` abstraction can run the same algorithm on both
//!   backends (the remaining algorithms run their sequential reference natively until
//!   dedicated kernels land).
//!
//! Algorithms included (paper section in parentheses):
//!
//! | module | algorithm | class |
//! |--------|-----------|-------|
//! | [`matmul`] | depth-`n` matrix multiply, in-place and limited-access variants; depth-`log²n` 8-way matrix multiply (Section 3) | Type-2 HBP |
//! | [`prefix`] | prefix sums as two BP tree passes (Section 6.1, Theorem 7.1(i)) | BP |
//! | [`transpose`] | matrix transpose in bit-interleaved layout; RM→BI and BI→RM layout conversions (Sections 4.3, 7) | BP / Type-2 |
//! | [`sort`] | an HBP merge sort (stand-in for the sample sort of \[7\]; see DESIGN.md) | Type-2 HBP |
//! | [`fft`] | FFT via the √n-decomposition (Theorem 7.1(iv)) | Type-2 HBP |
//! | [`listrank`] | list ranking and connected components by iterated rounds (Section 7) | Type-3/4 |
//! | [`taskgraph`] | arbitrary-dependency task graphs run natively by atomic indegree counting, plus the `dag-workflow` value semantics | irregular (measured-only) |
//! | [`bfs`] | level-synchronized BFS on seeded random graphs | irregular (measured-only) |
//! | [`spmv`] | CSR sparse matrix–vector multiply | BP |
//! | [`samplesort`] | three-phase sample sort with data-dependent buckets | irregular (measured-only) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod common;
pub mod fft;
pub mod layout;
pub mod listrank;
pub mod matmul;
pub mod prefix;
pub mod samplesort;
pub mod sort;
pub mod spmv;
pub mod taskgraph;
pub mod transpose;

pub use common::{Dest, GlobalArena};
pub use layout::{bit_interleave, MatrixLayout};
