//! An HBP sorting computation (Theorem 7.1(iii) workload).
//!
//! The paper's sort is the resource-oblivious sample sort of \[7\] (√n-way decomposition,
//! `T∞ = O(log n log log n)`). Reproducing that algorithm in full is out of scope for this
//! repository (it is the subject of its own paper); as documented in DESIGN.md we substitute
//! an **HBP merge sort**: two recursive calls into a local array followed by a BP merge pass
//! whose leaves write disjoint chunks of the destination. The substitution preserves the
//! properties the analysis needs — limited access, top dominance, exactly linear space, c = 1
//! collection of recursive calls — while its `T∞` is `O(log² n)` instead of
//! `O(log n log log n)`; the steal-bound experiments therefore compare against the bound of
//! Theorem 6.3(i) instantiated for this recursion, which is the honest prediction for the
//! algorithm actually built.

use crate::common::{balanced_levels, Dest};
use rws_dag::builders::BalancedTreeBuilder;
use rws_dag::{Addr, AlgoMeta, Computation, NodeId, Shrink, SpDagBuilder, WorkUnit};
use serde::{Deserialize, Serialize};

/// Configuration of the sorting computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SortConfig {
    /// Number of keys (power of two).
    pub n: usize,
    /// Base-case size (power of two).
    pub base: usize,
}

impl SortConfig {
    /// `n` keys with a base case of 16 (or `n` if smaller).
    pub fn new(n: usize) -> Self {
        SortConfig { n, base: 16.min(n) }
    }

    /// Builder-style: set the base case.
    pub fn with_base(mut self, base: usize) -> Self {
        self.base = base;
        self
    }
}

/// Build the HBP merge-sort computation: input at address 0, output at address `n`.
pub fn sort_computation(cfg: &SortConfig) -> Computation {
    assert!(cfg.n.is_power_of_two() && cfg.base.is_power_of_two() && cfg.base <= cfg.n);
    let mut b = SpDagBuilder::new();
    let root = build_sort(
        &mut b,
        0,
        Dest::Global { base: cfg.n as u64 },
        cfg.n as u64,
        cfg.base as u64,
        0,
    );
    let dag = b.build(root).expect("sort dag must validate");
    let meta = AlgoMeta::hbp2("hbp-mergesort", cfg.n as u64, 1, Shrink::Half)
        .with_base_case(cfg.base as u64);
    Computation::new(dag, meta)
}

/// Sort the `m` keys at global address `src` into `dest`.
fn build_sort(
    b: &mut SpDagBuilder,
    src: u64,
    dest: Dest,
    m: u64,
    base: u64,
    ctx_depth: u32,
) -> NodeId {
    if m <= base {
        let at_depth = ctx_depth + 1;
        // Base case: read the chunk, sort it internally (m log m comparisons, charged as ops),
        // write the destination chunk.
        let mut unit = WorkUnit::compute(m * (64 - m.leading_zeros() as u64).max(1))
            .reads((src..src + m).map(Addr));
        unit = dest.write_range(unit, 0..m, at_depth);
        return b.leaf(unit);
    }
    let h = m / 2;
    // The call's Seq declares a local array holding the two sorted halves.
    let seq_depth = ctx_depth + 1;
    let local = |k: u64| Dest::Local {
        depth: seq_depth,
        offset: u32::try_from(k * h).expect("local offset"),
    };
    let child_depth = seq_depth + balanced_levels(2);
    let left = build_sort(b, src, local(0), h, base, child_depth);
    let right = build_sort(b, src + h, local(1), h, base, child_depth);
    let halves = BalancedTreeBuilder::new(b, 2).combine(
        &[left, right],
        |_, _| WorkUnit::compute(1),
        |_, _| WorkUnit::compute(1),
    );

    // Merge pass: a BP tree whose leaves each produce one destination chunk. The access
    // pattern of a real merge depends on the data; for the cost model each leaf reads one
    // chunk's worth of keys from each half (2·chunk reads) and writes its chunk — the same
    // totals as a real merge, distributed evenly.
    let chunk = base.min(m);
    let chunks = (m / chunk) as usize;
    let levels = balanced_levels(chunks.next_power_of_two());
    let leaf_depth = seq_depth + levels + 1;
    let mut leaves = Vec::with_capacity(chunks);
    for c in 0..chunks as u64 {
        let lo = c * chunk;
        let hi = lo + chunk;
        let half_lo = lo / 2;
        let half_hi = (hi / 2).min(h);
        let mut unit = WorkUnit::compute(chunk);
        unit = local(0).read_range(unit, half_lo..half_hi, leaf_depth);
        unit = local(1).read_range(unit, half_lo..half_hi, leaf_depth);
        unit = dest.write_range(unit, lo..hi, leaf_depth);
        leaves.push(b.leaf(unit));
    }
    let merge = BalancedTreeBuilder::new(b, 2).combine(
        &leaves,
        |_, _| WorkUnit::compute(1),
        |_, _| WorkUnit::compute(1),
    );
    b.seq_with_segment(vec![halves, merge], u32::try_from(m).expect("segment size"))
}

/// Native fork-join merge sort on the `rws-runtime` work-stealing pool.
///
/// The same HBP structure as [`sort_computation`]: the two half sorts are one parallel
/// collection of recursive calls into fresh local arrays, followed by a merge writing each
/// destination slot exactly once. Call from inside [`rws_runtime::ThreadPool::install`] for
/// parallel execution; outside a pool worker the `join`s degrade to sequential calls.
pub fn merge_sort_native(keys: &[u64], base: usize) -> Vec<u64> {
    fn msort(mut keys: Vec<u64>, base: usize) -> Vec<u64> {
        if keys.len() <= base {
            keys.sort();
            return keys;
        }
        let right = keys.split_off(keys.len() / 2);
        let (left, right) =
            rws_runtime::join(move || msort(keys, base), move || msort(right, base));
        let mut out = Vec::with_capacity(left.len() + right.len());
        let (mut i, mut j) = (0, 0);
        while i < left.len() && j < right.len() {
            if left[i] <= right[j] {
                out.push(left[i]);
                i += 1;
            } else {
                out.push(right[j]);
                j += 1;
            }
        }
        out.extend_from_slice(&left[i..]);
        out.extend_from_slice(&right[j..]);
        out
    }
    msort(keys.to_vec(), base.max(1))
}

/// Sequential reference sort (stable).
pub fn sort_reference(keys: &[u64]) -> Vec<u64> {
    let mut v = keys.to_vec();
    v.sort();
    v
}

/// Sequential merge sort mirroring the recursive decomposition (validated against
/// [`sort_reference`]).
pub fn merge_sort_reference(keys: &[u64], base: usize) -> Vec<u64> {
    if keys.len() <= base {
        let mut v = keys.to_vec();
        v.sort();
        return v;
    }
    let h = keys.len() / 2;
    let left = merge_sort_reference(&keys[..h], base);
    let right = merge_sort_reference(&keys[h..], base);
    let mut out = Vec::with_capacity(keys.len());
    let (mut i, mut j) = (0, 0);
    while i < left.len() && j < right.len() {
        if left[i] <= right[j] {
            out.push(left[i]);
            i += 1;
        } else {
            out.push(right[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&left[i..]);
    out.extend_from_slice(&right[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    #[test]
    fn merge_sort_matches_std_sort() {
        let mut rng = SmallRng::seed_from_u64(99);
        for len in [0usize, 1, 2, 17, 64, 255] {
            let keys: Vec<u64> = (0..len).map(|_| rng.gen_range(0..1000)).collect();
            assert_eq!(merge_sort_reference(&keys, 4), sort_reference(&keys));
        }
    }

    #[test]
    fn native_runner_sorts_outside_a_pool() {
        let mut rng = SmallRng::seed_from_u64(17);
        for len in [0usize, 1, 2, 33, 256, 1000] {
            let keys: Vec<u64> = (0..len).map(|_| rng.gen_range(0..500)).collect();
            assert_eq!(merge_sort_native(&keys, 16), sort_reference(&keys));
        }
    }

    #[test]
    fn dag_structure() {
        let comp = sort_computation(&SortConfig::new(256).with_base(16));
        assert!(comp.check_properties().is_empty());
        assert!(comp.meta.class.is_hbp());
        // Output written exactly once per word; input only read.
        assert_eq!(comp.dag.max_writes_per_global_word(), 1);
        assert_eq!(comp.dag.global_footprint_words(), 2 * 256);
    }

    #[test]
    fn work_is_n_log_n_like() {
        let w256 = sort_computation(&SortConfig::new(256).with_base(16)).dag.work();
        let w1024 = sort_computation(&SortConfig::new(1024).with_base(16)).dag.work();
        let ratio = w1024 as f64 / w256 as f64;
        // 4x the keys => slightly more than 4x the work (n log n), well under 8x.
        assert!(ratio > 3.5 && ratio < 7.0, "ratio {ratio}");
    }

    #[test]
    fn span_grows_polylogarithmically() {
        let s256 = sort_computation(&SortConfig::new(256).with_base(16)).dag.span_nodes();
        let s4096 = sort_computation(&SortConfig::new(4096).with_base(16)).dag.span_nodes();
        assert!(s4096 > s256);
        assert!(
            (s4096 as f64) < (s256 as f64) * 16.0 / 2.0,
            "span must grow far slower than the 16x input growth: {s256} -> {s4096}"
        );
    }
}
