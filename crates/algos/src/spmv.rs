//! Sparse matrix–vector multiply over a CSR matrix.
//!
//! Irregular data (seeded random sparsity pattern), regular *structure*: one balanced
//! parallel pass over the output rows, every `y` word written exactly once — a textbook BP
//! computation, so unlike its `bfs`/`sample-sort` siblings this workload keeps the paper's
//! steal / block-miss / runtime bound checks in the lab (`bp_steals` applies to the
//! balanced fork tree the builder emits).
//!
//! [`spmv_native`] fork-joins over disjoint row chunks with each row's dot product
//! accumulated sequentially in index order — bit-identical floating-point results to
//! [`spmv_reference`] on every schedule, which is what lets the f64 parity assertions stay
//! exact rather than tolerance-based.

use crate::common::par_chunks_mut;
use rws_dag::builders::BalancedTreeBuilder;
use rws_dag::{Addr, AlgoMeta, Computation, NodeId, SpDagBuilder, WorkUnit};
use serde::{Deserialize, Serialize};

/// A sparse matrix in compressed-sparse-row form.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    /// Number of columns (the length `x` must have).
    pub ncols: usize,
    /// `row_starts[r]..row_starts[r + 1]` indexes `cols`/`vals` with row `r`'s entries.
    pub row_starts: Vec<usize>,
    /// Column index of each stored entry.
    pub cols: Vec<usize>,
    /// Value of each stored entry.
    pub vals: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.row_starts.len().saturating_sub(1)
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// A seeded random square `n × n` matrix with one guaranteed diagonal entry per row
    /// plus up to `extra_per_row` random off-diagonal entries, values in `(-1, 1)`.
    /// Deterministic in `seed`.
    pub fn random(seed: u64, n: usize, extra_per_row: usize) -> CsrMatrix {
        assert!(n > 0, "a matrix needs at least one row");
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut row_starts = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        row_starts.push(0);
        for r in 0..n {
            let mut row_cols = vec![r];
            for _ in 0..(next() as usize) % (extra_per_row + 1) {
                row_cols.push(next() as usize % n);
            }
            row_cols.sort_unstable();
            row_cols.dedup();
            for c in row_cols {
                cols.push(c);
                // Map a 53-bit draw into (-1, 1).
                vals.push((next() >> 11) as f64 / (1u64 << 52) as f64 - 1.0);
            }
            row_starts.push(cols.len());
        }
        CsrMatrix { ncols: n, row_starts, cols, vals }
    }
}

/// Sequential CSR SpMV: `y[r] = Σ vals[k] · x[cols[k]]` over row `r`'s entries, accumulated
/// in storage order.
pub fn spmv_reference(m: &CsrMatrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), m.ncols, "x must have one entry per matrix column");
    (0..m.nrows())
        .map(|r| {
            let mut acc = 0.0;
            for k in m.row_starts[r]..m.row_starts[r + 1] {
                acc += m.vals[k] * x[m.cols[k]];
            }
            acc
        })
        .collect()
}

/// Output rows per fork-join leaf of the native kernel.
const NATIVE_CHUNK: usize = 64;

/// Native CSR SpMV on the `rws-runtime` pool: fork-join over disjoint chunks of `y`, each
/// row's dot product accumulated sequentially in storage order — bit-identical to
/// [`spmv_reference`] on every schedule.
pub fn spmv_native(m: &CsrMatrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), m.ncols, "x must have one entry per matrix column");
    let mut y = vec![0.0f64; m.nrows()];
    par_chunks_mut(&mut y, NATIVE_CHUNK, &|chunk_idx, part: &mut [f64]| {
        let lo = chunk_idx * NATIVE_CHUNK;
        for (off, out) in part.iter_mut().enumerate() {
            let r = lo + off;
            let mut acc = 0.0;
            for k in m.row_starts[r]..m.row_starts[r + 1] {
                acc += m.vals[k] * x[m.cols[k]];
            }
            *out = acc;
        }
    });
    y
}

/// Configuration for the SpMV computation builder.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpmvConfig {
    /// Output rows per dag leaf.
    pub chunk: usize,
}

impl SpmvConfig {
    /// Default leaf granularity.
    pub fn new() -> Self {
        SpmvConfig { chunk: 8 }
    }
}

impl Default for SpmvConfig {
    fn default() -> Self {
        SpmvConfig::new()
    }
}

/// Build the SpMV computation: one balanced parallel pass over row chunks.
///
/// Memory layout: the entry arrays (`cols`/`vals`, modeled as one word per entry) occupy
/// words `0..nnz`, `x` the next `ncols` words, `y` the `nrows` words after that. Each leaf
/// reads its rows' entry words and the `x` words those entries touch, and writes its `y`
/// words once — a limited-access BP computation.
pub fn spmv_computation(m: &CsrMatrix, cfg: &SpmvConfig) -> Computation {
    let n = m.nrows();
    let nnz = m.nnz() as u64;
    let x_base = nnz;
    let y_base = nnz + m.ncols as u64;
    let mut b = SpDagBuilder::new();
    let rows: Vec<usize> = (0..n).collect();
    let leaves: Vec<NodeId> = rows
        .chunks(cfg.chunk.max(1))
        .map(|chunk| {
            let mut unit = WorkUnit::empty();
            let mut ops = 0u64;
            for &r in chunk {
                let lo = m.row_starts[r] as u64;
                let hi = m.row_starts[r + 1] as u64;
                ops += 1 + 2 * (hi - lo);
                unit = unit.reads((lo..hi).map(Addr));
                unit = unit.reads(
                    (m.row_starts[r]..m.row_starts[r + 1]).map(|k| Addr(x_base + m.cols[k] as u64)),
                );
                unit = unit.write(Addr(y_base + r as u64));
            }
            b.leaf(unit.with_ops(ops))
        })
        .collect();
    let root = BalancedTreeBuilder::new(&mut b, 2).combine(
        &leaves,
        |_, _| WorkUnit::compute(1),
        |_, _| WorkUnit::compute(1),
    );
    let dag = b.build(root).expect("spmv dag must validate");
    let meta = AlgoMeta::bp("spmv", n as u64).with_base_case(cfg.chunk as u64);
    Computation::new(dag, meta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_on_an_identity_matrix() {
        // Diagonal-only rows: seed draws no extras when extra_per_row = 0, so the matrix is
        // diagonal and y is the diagonal scaling of x.
        let m = CsrMatrix::random(3, 4, 0);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = spmv_reference(&m, &x);
        for (r, &yr) in y.iter().enumerate() {
            assert_eq!(yr, m.vals[r] * x[r]);
        }
    }

    #[test]
    fn random_matrix_is_deterministic() {
        assert_eq!(CsrMatrix::random(11, 64, 6), CsrMatrix::random(11, 64, 6));
        let a = CsrMatrix::random(11, 64, 6);
        let b = CsrMatrix::random(12, 64, 6);
        assert!(a != b, "different seeds draw different matrices");
    }

    #[test]
    fn native_is_bit_identical_to_the_reference_outside_a_pool() {
        for (seed, n) in [(5u64, 1usize), (5, 63), (9, 500)] {
            let m = CsrMatrix::random(seed, n, 7);
            let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            assert_eq!(spmv_native(&m, &x), spmv_reference(&m, &x), "seed {seed}, n {n}");
        }
    }

    #[test]
    fn spmv_dag_is_a_single_limited_access_bp_pass() {
        let m = CsrMatrix::random(7, 64, 5);
        let comp = spmv_computation(&m, &SpmvConfig::new());
        assert!(comp.check_properties().is_empty(), "{:?}", comp.check_properties());
        assert_eq!(comp.dag.max_writes_per_global_word(), 1);
        assert_eq!(comp.dag.leaf_count(), 8, "64 rows / 8 per leaf");
        assert!(comp.meta.class.is_hbp(), "a balanced single pass is BP");
    }
}
