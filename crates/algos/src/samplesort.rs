//! Sample sort: splitter selection, a parallel partition pass, and independent per-bucket
//! sorts.
//!
//! This is the classic three-phase sample sort (the algorithm the paper's sorting results
//! cite; `sort.rs` keeps the HBP merge sort that stands in for it analytically). Bucket
//! sizes are data-dependent — a skewed key distribution gives a skewed fan-out — so the
//! balanced-tree steal analysis does **not** apply and the lab runs this workload
//! measured-only. Precisely that skew is what makes it a good idle-path stress: a large
//! bucket keeps one worker busy long after its siblings drained theirs.
//!
//! [`sample_sort_native`] is deterministic on every schedule: splitters are a deterministic
//! function of the input, the partition preserves input order within a bucket, and each
//! bucket is sorted independently — so the output equals [`sample_sort_reference`] (a plain
//! sequential sort) element for element.

use crate::common::par_chunks_mut;
use rws_dag::builders::BalancedTreeBuilder;
use rws_dag::{Addr, AlgoMeta, Computation, NodeId, SpDagBuilder, WorkUnit};
use serde::{Deserialize, Serialize};

/// Sequential reference: the sorted copy of `keys`.
pub fn sample_sort_reference(keys: &[u64]) -> Vec<u64> {
    let mut v = keys.to_vec();
    v.sort_unstable();
    v
}

/// Splitter oversampling factor.
const OVERSAMPLE: usize = 4;

/// Deterministic splitters: an evenly-spaced oversampled probe of `keys`, sorted, with
/// every `OVERSAMPLE`-th element kept — `buckets - 1` splitters.
fn choose_splitters(keys: &[u64], buckets: usize) -> Vec<u64> {
    let s = (buckets * OVERSAMPLE).min(keys.len()).max(1);
    let mut sample: Vec<u64> = (0..s).map(|i| keys[i * keys.len() / s]).collect();
    sample.sort_unstable();
    (1..buckets).map(|b| sample[(b * s / buckets).min(s - 1)]).collect()
}

/// The bucket a key belongs to: keys `<=` a splitter go left of it, so bucket boundaries
/// are monotone and the concatenation of sorted buckets is sorted.
fn bucket_of(splitters: &[u64], key: u64) -> usize {
    splitters.partition_point(|&s| s < key)
}

/// Input keys per fork-join leaf of the native partition pass.
const NATIVE_CHUNK: usize = 256;

/// Native sample sort on the `rws-runtime` pool.
///
/// Phase 1 picks splitters (sequential; the sample is tiny). Phase 2 fork-joins over input
/// chunks, each partitioning its slice into per-bucket runs. Phase 3 fork-joins over
/// buckets, each concatenating its runs in chunk order and sorting them. Output order is
/// schedule-independent throughout.
pub fn sample_sort_native(keys: &[u64], buckets: usize) -> Vec<u64> {
    let n = keys.len();
    if n <= 1 || buckets <= 1 {
        return sample_sort_reference(keys);
    }
    let splitters = choose_splitters(keys, buckets);
    let chunks = n.div_ceil(NATIVE_CHUNK);
    // Phase 2: per-chunk, per-bucket runs (disjoint `&mut` slots; input read shared).
    let mut parts: Vec<Vec<Vec<u64>>> = vec![Vec::new(); chunks];
    let splitters_ref = &splitters;
    par_chunks_mut(&mut parts, 1, &|c, slot: &mut [Vec<Vec<u64>>]| {
        let lo = c * NATIVE_CHUNK;
        let hi = (lo + NATIVE_CHUNK).min(keys.len());
        let mut local = vec![Vec::new(); buckets];
        for &k in &keys[lo..hi] {
            local[bucket_of(splitters_ref, k)].push(k);
        }
        slot[0] = local;
    });
    // Phase 3: per-bucket gather + sort (each bucket owns its slot).
    let mut sorted: Vec<Vec<u64>> = vec![Vec::new(); buckets];
    let parts_ref = &parts;
    par_chunks_mut(&mut sorted, 1, &|b, slot: &mut [Vec<u64>]| {
        let mut v: Vec<u64> = parts_ref.iter().flat_map(|p| p[b].iter().copied()).collect();
        v.sort_unstable();
        slot[0] = v;
    });
    sorted.concat()
}

/// Configuration for the sample-sort computation builder.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampleSortConfig {
    /// Number of buckets.
    pub buckets: usize,
    /// Input keys per partition-pass dag leaf.
    pub chunk: usize,
}

impl SampleSortConfig {
    /// `buckets` buckets with the default leaf granularity.
    pub fn new(buckets: usize) -> Self {
        SampleSortConfig { buckets: buckets.max(2), chunk: 8 }
    }
}

/// Build the sample-sort computation for `keys`: a splitter leaf, a balanced partition
/// pass over input chunks, and a parallel pass over the (data-dependent, possibly skewed)
/// buckets, the three phases sequenced.
///
/// Memory layout: input at words `0..n`, splitters next, then the bucketed array (every
/// element's destination precomputed from the actual keys, each word written once), then
/// the output array (written once by the bucket sorts) — limited access throughout.
pub fn sample_sort_computation(keys: &[u64], cfg: &SampleSortConfig) -> Computation {
    let n = keys.len() as u64;
    assert!(n > 0, "sample sort needs at least one key");
    let buckets = cfg.buckets.max(2);
    let splitters = choose_splitters(keys, buckets);
    let s = splitters.len() as u64;
    let splitter_base = n;
    let bucketed_base = n + s;
    let out_base = bucketed_base + n;

    // Destination of each input element in the bucketed array: bucket start + stable rank.
    let assignment: Vec<usize> = keys.iter().map(|&k| bucket_of(&splitters, k)).collect();
    let mut bucket_len = vec![0u64; buckets];
    for &b in &assignment {
        bucket_len[b] += 1;
    }
    let mut bucket_start = vec![0u64; buckets + 1];
    for b in 0..buckets {
        bucket_start[b + 1] = bucket_start[b] + bucket_len[b];
    }
    let mut cursor = bucket_start.clone();
    let dest: Vec<u64> = assignment
        .iter()
        .map(|&b| {
            let d = cursor[b];
            cursor[b] += 1;
            d
        })
        .collect();

    let mut b = SpDagBuilder::new();
    // Phase 1: sample + splitter selection (one leaf; the sample is O(buckets)).
    let sample_words = (buckets * OVERSAMPLE) as u64;
    let phase1 = b.leaf(
        WorkUnit::compute(sample_words.max(1) * 4)
            .reads((0..sample_words.min(n)).map(|i| Addr(i * n / sample_words.max(1))))
            .writes((0..s).map(|i| Addr(splitter_base + i))),
    );
    // Phase 2: balanced partition pass over input chunks.
    let idx: Vec<usize> = (0..keys.len()).collect();
    let leaves: Vec<NodeId> = idx
        .chunks(cfg.chunk.max(1))
        .map(|chunk| {
            let mut unit = WorkUnit::empty().reads((0..s).map(|i| Addr(splitter_base + i)));
            for &i in chunk {
                unit = unit.read(Addr(i as u64)).write(Addr(bucketed_base + dest[i]));
            }
            b.leaf(unit.with_ops(chunk.len() as u64 * (1 + s.ilog2().max(1) as u64)))
        })
        .collect();
    let phase2 = BalancedTreeBuilder::new(&mut b, 2).combine(
        &leaves,
        |_, _| WorkUnit::compute(1),
        |_, _| WorkUnit::compute(1),
    );
    // Phase 3: one leaf per bucket — the skewed fan-out is the point.
    let bucket_leaves: Vec<NodeId> = (0..buckets)
        .map(|bk| {
            let (lo, hi) = (bucket_start[bk], bucket_start[bk + 1]);
            let len = hi - lo;
            let ops = (len.max(1)) * (len.max(2).ilog2() as u64);
            b.leaf(
                WorkUnit::compute(ops)
                    .reads((lo..hi).map(|i| Addr(bucketed_base + i)))
                    .writes((lo..hi).map(|i| Addr(out_base + i))),
            )
        })
        .collect();
    let phase3 = BalancedTreeBuilder::new(&mut b, 2).combine(
        &bucket_leaves,
        |_, _| WorkUnit::compute(1),
        |_, _| WorkUnit::compute(1),
    );
    let root = b.seq(vec![phase1, phase2, phase3]);
    let dag = b.build(root).expect("sample-sort dag must validate");
    let mut meta = AlgoMeta::bp("sample-sort", n).with_base_case(cfg.chunk as u64);
    // Data-dependent bucket sizes break the HBP balance conditions: measured-only.
    meta.class = rws_dag::AlgoClass::Hierarchical {
        level: 2,
        hbp: false,
        collections: 2,
        shrink: rws_dag::Shrink::Sqrt,
    };
    Computation::new(dag, meta)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_keys(seed: u64, n: usize) -> Vec<u64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                state.wrapping_mul(0x2545_F491_4F6C_DD1D) % 1_000_000
            })
            .collect()
    }

    #[test]
    fn native_matches_the_reference_outside_a_pool() {
        for (seed, n, buckets) in [(1u64, 1usize, 4usize), (2, 100, 8), (3, 5000, 16), (4, 64, 2)] {
            let keys = seeded_keys(seed, n);
            assert_eq!(
                sample_sort_native(&keys, buckets),
                sample_sort_reference(&keys),
                "seed {seed}, n {n}, buckets {buckets}"
            );
        }
    }

    #[test]
    fn duplicates_and_skew_still_sort_correctly() {
        // Heavy duplication lands most keys in one bucket — the skewed case.
        let keys: Vec<u64> = (0..1000).map(|i| if i % 10 == 0 { i as u64 } else { 7 }).collect();
        assert_eq!(sample_sort_native(&keys, 8), sample_sort_reference(&keys));
    }

    #[test]
    fn bucket_assignment_is_monotone() {
        let keys = seeded_keys(9, 256);
        let splitters = choose_splitters(&keys, 8);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let assigned: Vec<usize> = sorted.iter().map(|&k| bucket_of(&splitters, k)).collect();
        assert!(assigned.windows(2).all(|w| w[0] <= w[1]), "buckets respect key order");
    }

    #[test]
    fn sample_sort_dag_is_three_sequenced_phases_with_single_writes() {
        let keys = seeded_keys(5, 256);
        let comp = sample_sort_computation(&keys, &SampleSortConfig::new(8));
        assert!(comp.check_properties().is_empty(), "{:?}", comp.check_properties());
        assert_eq!(comp.dag.max_writes_per_global_word(), 1);
        // 1 splitter leaf + 256/8 partition leaves + 8 bucket leaves.
        assert_eq!(comp.dag.leaf_count(), 1 + 32 + 8);
        assert!(!comp.meta.class.is_hbp(), "skewed buckets are not HBP");
    }
}
