//! Level-synchronized breadth-first search on seeded random graphs.
//!
//! The first irregular workload of the suite: the frontier's size and shape are data-
//! dependent, so neither the paper's fork-join steal bounds nor its balanced-tree cache
//! analysis applies — the lab runs this workload **measured-only**. What the dag builder
//! does model faithfully is the level-synchronized structure itself: one BP-style pass per
//! BFS level over the exact frontier the input graph produces, with every distance word
//! written exactly once (by the level that discovers it), sequenced by a barrier between
//! levels — the same structure [`bfs_native`] executes for real on the pool.

use crate::common::par_chunks_mut;
use rws_dag::builders::BalancedTreeBuilder;
use rws_dag::{Addr, AlgoMeta, Computation, NodeId, SpDagBuilder, WorkUnit};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicI64, Ordering};

/// A directed graph in compressed-sparse-row form.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    /// `row_starts[v]..row_starts[v + 1]` indexes `cols` with `v`'s out-neighbors.
    pub row_starts: Vec<usize>,
    /// Concatenated adjacency lists.
    pub cols: Vec<usize>,
}

impl CsrGraph {
    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.row_starts.len().saturating_sub(1)
    }

    /// Number of edges.
    pub fn edges(&self) -> usize {
        self.cols.len()
    }

    /// The out-neighbors of `v`.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.cols[self.row_starts[v]..self.row_starts[v + 1]]
    }

    /// A seeded random graph over `vertices` vertices: every vertex keeps a ring edge to
    /// its successor (so the graph is connected and every BFS from any source reaches all
    /// of it) plus up to `extra_degree` random out-edges. Deterministic in `seed`.
    pub fn random(seed: u64, vertices: usize, extra_degree: usize) -> CsrGraph {
        assert!(vertices > 0, "a graph needs at least one vertex");
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut row_starts = Vec::with_capacity(vertices + 1);
        let mut cols = Vec::new();
        row_starts.push(0);
        for v in 0..vertices {
            let mut adj = vec![(v + 1) % vertices];
            for _ in 0..(next() as usize) % (extra_degree + 1) {
                adj.push(next() as usize % vertices);
            }
            adj.sort_unstable();
            adj.dedup();
            adj.retain(|&u| u != v);
            cols.extend(adj);
            row_starts.push(cols.len());
        }
        CsrGraph { row_starts, cols }
    }
}

/// Sequential BFS distances from `src` (`-1` for unreachable vertices).
pub fn bfs_reference(g: &CsrGraph, src: usize) -> Vec<i64> {
    let mut dist = vec![-1i64; g.vertices()];
    for (level, frontier) in bfs_level_sets(g, src).iter().enumerate() {
        for &v in frontier {
            dist[v] = level as i64;
        }
    }
    dist
}

/// The BFS level sets from `src`: `sets[l]` holds the vertices at distance `l`, each in
/// the deterministic discovery order of a sequential queue BFS. This is the structure the
/// dag builder encodes and the native runner mirrors level by level.
pub fn bfs_level_sets(g: &CsrGraph, src: usize) -> Vec<Vec<usize>> {
    let n = g.vertices();
    assert!(src < n, "source {src} out of range for {n} vertices");
    let mut seen = vec![false; n];
    seen[src] = true;
    let mut sets = vec![vec![src]];
    loop {
        let frontier = sets.last().expect("sets starts non-empty");
        let mut next = Vec::new();
        for &u in frontier {
            for &v in g.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    next.push(v);
                }
            }
        }
        if next.is_empty() {
            return sets;
        }
        sets.push(next);
    }
}

/// Frontier vertices per fork-join leaf of the native level sweep.
const NATIVE_CHUNK: usize = 64;

/// Native level-synchronized BFS on the `rws-runtime` pool.
///
/// Each level fork-joins over chunks of the current frontier; a chunk claims newly
/// discovered vertices with a compare-exchange on the shared distance array, so every
/// vertex is discovered exactly once. Distances are deterministic whatever the race
/// outcome — every contender for a vertex writes the same level — which is why the output
/// matches [`bfs_reference`] element for element on any schedule.
pub fn bfs_native(g: &CsrGraph, src: usize) -> Vec<i64> {
    let n = g.vertices();
    assert!(src < n, "source {src} out of range for {n} vertices");
    let dist: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(-1)).collect();
    dist[src].store(0, Ordering::Relaxed);
    let mut frontier = vec![src];
    let mut level = 0i64;
    while !frontier.is_empty() {
        let chunks = frontier.len().div_ceil(NATIVE_CHUNK);
        // One discovery bucket per frontier chunk: disjoint `&mut` targets for the
        // fork-join, concatenated afterwards into the next frontier.
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); chunks];
        let frontier_ref = &frontier;
        let dist_ref = &dist;
        par_chunks_mut(&mut buckets, 1, &|i, slot: &mut [Vec<usize>]| {
            let lo = i * NATIVE_CHUNK;
            let hi = (lo + NATIVE_CHUNK).min(frontier_ref.len());
            for &u in &frontier_ref[lo..hi] {
                for &v in g.neighbors(u) {
                    if dist_ref[v]
                        .compare_exchange(-1, level + 1, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        slot[0].push(v);
                    }
                }
            }
        });
        frontier = buckets.concat();
        level += 1;
    }
    dist.into_iter().map(AtomicI64::into_inner).collect()
}

/// Configuration for the BFS computation builder.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BfsConfig {
    /// Source vertex.
    pub src: usize,
    /// Frontier vertices per dag leaf.
    pub chunk: usize,
}

impl BfsConfig {
    /// BFS from vertex 0 with the default leaf granularity.
    pub fn new() -> Self {
        BfsConfig { src: 0, chunk: 8 }
    }
}

impl Default for BfsConfig {
    fn default() -> Self {
        BfsConfig::new()
    }
}

/// Build the level-synchronized BFS computation for `g`: one balanced parallel pass per
/// BFS level (over that level's exact frontier), passes sequenced by a barrier.
///
/// Memory layout: the adjacency array occupies words `0..e`; the distance array, in
/// discovery order, occupies the next `n` words, so level `l` writes the contiguous slice
/// its discoveries own and every distance word is written exactly once (limited access).
/// Each leaf reads its frontier vertices' distance words and adjacency ranges and writes
/// the distance words of the vertices those frontier vertices discovered.
pub fn bfs_computation(g: &CsrGraph, cfg: &BfsConfig) -> Computation {
    let n = g.vertices() as u64;
    let e = g.edges() as u64;
    let sets = bfs_level_sets(g, cfg.src);
    // Discovery order: position of each vertex in the concatenated level sets.
    let mut discovery = vec![u64::MAX; g.vertices()];
    let mut discoverer = vec![usize::MAX; g.vertices()];
    let mut pos = 0u64;
    for frontier in &sets {
        for &v in frontier {
            discovery[v] = pos;
            pos += 1;
        }
    }
    for frontier in &sets {
        for &u in frontier {
            for &v in g.neighbors(u) {
                if discoverer[v] == usize::MAX && discovery[v] > discovery[u] {
                    discoverer[v] = u;
                }
            }
        }
    }
    let dist_base = e;
    let mut b = SpDagBuilder::new();
    let mut rounds: Vec<NodeId> = Vec::new();
    for frontier in &sets {
        let leaves: Vec<NodeId> = frontier
            .chunks(cfg.chunk.max(1))
            .map(|chunk| {
                let mut unit = WorkUnit::compute(0);
                let mut ops = 0u64;
                for &u in chunk {
                    ops += 1 + g.neighbors(u).len() as u64;
                    unit = unit.read(Addr(dist_base + discovery[u]));
                    let lo = g.row_starts[u] as u64;
                    let hi = g.row_starts[u + 1] as u64;
                    unit = unit.reads((lo..hi).map(Addr));
                    for &v in g.neighbors(u) {
                        if discoverer[v] == u {
                            unit = unit.write(Addr(dist_base + discovery[v]));
                        }
                    }
                }
                b.leaf(unit.with_ops(ops))
            })
            .collect();
        rounds.push(BalancedTreeBuilder::new(&mut b, 2).combine(
            &leaves,
            |_, _| WorkUnit::compute(1),
            |_, _| WorkUnit::compute(1),
        ));
    }
    let root = b.seq(rounds);
    let dag = b.build(root).expect("bfs dag must validate");
    let mut meta = AlgoMeta::bp("bfs", n);
    // Level-synchronized rounds over a data-dependent frontier: iterated like list
    // ranking, but *not* balanced — the paper's HBP analysis does not cover it, which is
    // why the lab treats this workload as measured-only.
    meta.class = rws_dag::AlgoClass::Hierarchical {
        level: 3,
        hbp: false,
        collections: 1,
        shrink: rws_dag::Shrink::Half,
    };
    Computation::new(dag, meta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_distances_on_a_ring() {
        // Pure ring: distance is the forward walk length.
        let g = CsrGraph::random(1, 8, 0);
        let d = bfs_reference(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn random_graph_is_fully_reachable_and_deterministic() {
        let g = CsrGraph::random(42, 256, 4);
        assert_eq!(g, CsrGraph::random(42, 256, 4));
        let d = bfs_reference(&g, 3);
        assert!(d.iter().all(|&x| x >= 0), "the ring edge keeps every vertex reachable");
    }

    #[test]
    fn native_matches_reference_outside_a_pool() {
        for (seed, n, deg) in [(7u64, 1usize, 0usize), (7, 64, 3), (11, 500, 6)] {
            let g = CsrGraph::random(seed, n, deg);
            assert_eq!(bfs_native(&g, 0), bfs_reference(&g, 0), "seed {seed}, n {n}");
        }
    }

    #[test]
    fn level_sets_partition_the_reachable_vertices() {
        let g = CsrGraph::random(9, 128, 5);
        let sets = bfs_level_sets(&g, 0);
        let total: usize = sets.iter().map(Vec::len).sum();
        assert_eq!(total, 128, "every vertex is discovered exactly once");
        let d = bfs_reference(&g, 0);
        for (level, set) in sets.iter().enumerate() {
            assert!(set.iter().all(|&v| d[v] == level as i64));
        }
    }

    #[test]
    fn bfs_dag_writes_each_distance_word_once() {
        let g = CsrGraph::random(5, 64, 3);
        let comp = bfs_computation(&g, &BfsConfig::new());
        assert!(comp.check_properties().is_empty(), "{:?}", comp.check_properties());
        assert_eq!(comp.dag.max_writes_per_global_word(), 1);
        assert!(comp.dag.work() > 0);
        // Levels are sequenced: the span reflects the level count, not one flat pass.
        assert_eq!(
            comp.dag.leaf_count() as usize,
            bfs_level_sets(&g, 0).iter().map(|s| s.len().div_ceil(8)).sum::<usize>()
        );
    }
}
