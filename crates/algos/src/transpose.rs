//! Matrix transposition and layout conversions (Sections 4.3 and 7).
//!
//! * [`transpose_bi_computation`] — in-place transpose of a matrix in BI layout. A BP tree
//!   computation: diagonal tiles transpose themselves, off-diagonal tile pairs swap.
//! * [`rm_to_bi_computation`] — the straightforward tree computation copying row-major tiles
//!   into the (contiguous) BI positions; `W = O(n²)`, `T∞ = O(log n)`, block delay `O(S·B)`
//!   (Lemma 4.6).
//! * [`bi_to_rm_computation`] — the paper's slower but block-miss-frugal conversion
//!   (Lemma 4.7): recursively convert each quadrant into a local array, then merge the four
//!   quadrant-RM arrays into the destination with a tree computation.
//!   `W = O(n² log n)`, `T∞ = O(log² n)`.
//!
//! Each of the three computations also ships as a real fork-join kernel on the
//! `rws-runtime` pool ([`transpose_native_bi`], [`rm_to_bi_native`], [`bi_to_rm_native`]):
//! aligned BI quadrants are contiguous, so the quadrant recursion splits the buffer into
//! disjoint borrowed `&mut` slices and forks with `rws_runtime::join` — the same
//! decomposition the dag builders emit, executed for real.

use crate::common::{balanced_levels, par_chunks_mut, Dest};
use crate::layout::{bi_quadrant_offset, bit_interleave};
use rws_dag::builders::BalancedTreeBuilder;
use rws_dag::{Addr, AlgoMeta, Computation, NodeId, Shrink, SpDagBuilder, WorkUnit};

fn combine(b: &mut SpDagBuilder, children: &[NodeId]) -> NodeId {
    BalancedTreeBuilder::new(b, 2).combine(
        children,
        |_, _| WorkUnit::compute(1),
        |_, _| WorkUnit::compute(1),
    )
}

// ------------------------------------------------------------------------------------------
// In-place transpose in BI layout
// ------------------------------------------------------------------------------------------

/// Build the computation transposing an `n × n` matrix stored in BI layout at address 0,
/// with `base × base` leaf tiles.
pub fn transpose_bi_computation(n: usize, base: usize) -> Computation {
    assert!(n.is_power_of_two() && base.is_power_of_two() && base <= n);
    let mut b = SpDagBuilder::new();
    let root = build_transpose(&mut b, 0, n as u64, base as u64);
    let dag = b.build(root).expect("transpose dag must validate");
    Computation::new(
        dag,
        AlgoMeta::bp("transpose-bi", (n * n) as u64).with_base_case((base * base) as u64),
    )
}

fn build_transpose(b: &mut SpDagBuilder, start: u64, m: u64, base: u64) -> NodeId {
    if m <= base {
        // A diagonal tile: read and rewrite every element (in-place transpose of the tile).
        let m2 = m * m;
        let unit = WorkUnit::compute(m2)
            .reads((start..start + m2).map(Addr))
            .writes((start..start + m2).map(Addr));
        return b.leaf(unit);
    }
    let tl = build_transpose(b, start + bi_quadrant_offset(0, m), m / 2, base);
    let br = build_transpose(b, start + bi_quadrant_offset(3, m), m / 2, base);
    let swap = build_swap(
        b,
        start + bi_quadrant_offset(1, m),
        start + bi_quadrant_offset(2, m),
        m / 2,
        base,
    );
    combine(b, &[tl, br, swap])
}

fn build_swap(b: &mut SpDagBuilder, x: u64, y: u64, m: u64, base: u64) -> NodeId {
    if m <= base {
        let m2 = m * m;
        let unit = WorkUnit::compute(2 * m2)
            .reads((x..x + m2).map(Addr))
            .reads((y..y + m2).map(Addr))
            .writes((x..x + m2).map(Addr))
            .writes((y..y + m2).map(Addr));
        return b.leaf(unit);
    }
    // Swapping X with Yᵀ quadrant-wise: X_q swaps with Y_{qᵀ}.
    let children: Vec<NodeId> = [(0u64, 0u64), (1, 2), (2, 1), (3, 3)]
        .iter()
        .map(|&(qx, qy)| {
            build_swap(b, x + bi_quadrant_offset(qx, m), y + bi_quadrant_offset(qy, m), m / 2, base)
        })
        .collect();
    combine(b, &children)
}

/// Sequential reference transpose (row-major in, row-major out).
pub fn transpose_reference(a: &[f64], n: usize) -> Vec<f64> {
    let mut t = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            t[j * n + i] = a[i * n + j];
        }
    }
    t
}

// ------------------------------------------------------------------------------------------
// Native fork-join kernels
// ------------------------------------------------------------------------------------------

/// Split a BI-ordered `m × m` buffer into its four contiguous quadrant slices
/// (TL, TR, BL, BR — each `(m/2)²` words).
fn quads_mut(s: &mut [f64]) -> [&mut [f64]; 4] {
    let quarter = s.len() / 4;
    let (a, rest) = s.split_at_mut(quarter);
    let (b, rest) = rest.split_at_mut(quarter);
    let (c, d) = rest.split_at_mut(quarter);
    [a, b, c, d]
}

/// In-place native fork-join transpose of an `n × n` matrix in BI layout — the same
/// decomposition as [`transpose_bi_computation`]'s dag: diagonal quadrants transpose
/// themselves, the off-diagonal pair swap-transposes, all three in one parallel collection
/// over disjoint borrowed quadrant slices. Outside a pool worker the joins run
/// sequentially.
pub fn transpose_native_bi(a: &mut [f64], n: usize, base: usize) {
    assert!(n.is_power_of_two() && base.is_power_of_two() && base >= 1 && base <= n);
    assert_eq!(a.len(), n * n);
    transpose_rec(a, n, base);
}

fn transpose_rec(a: &mut [f64], m: usize, base: usize) {
    if m <= base {
        // A diagonal tile: swap each (i, j) / (j, i) pair within the tile.
        for i in 0..m as u64 {
            for j in (i + 1)..m as u64 {
                a.swap(bit_interleave(i, j) as usize, bit_interleave(j, i) as usize);
            }
        }
        return;
    }
    let [tl, tr, bl, br] = quads_mut(a);
    // One scope per node: the two diagonal recursions are spawns (inline slots — no
    // allocation when unstolen), the swap pair runs in the scope body.
    rws_runtime::scope(|s| {
        s.spawn(|_| transpose_rec(tl, m / 2, base));
        s.spawn(|_| transpose_rec(br, m / 2, base));
        swap_transpose_rec(tr, bl, m / 2, base);
    });
}

/// Set `X ← Yᵀ` and `Y ← Xᵀ` for two disjoint BI-ordered `m × m` tiles; quadrant-wise,
/// `X_q` pairs with `Y_{qᵀ}` (the dag's `build_swap`).
fn swap_transpose_rec(x: &mut [f64], y: &mut [f64], m: usize, base: usize) {
    if m <= base {
        for i in 0..m as u64 {
            for j in 0..m as u64 {
                let xi = bit_interleave(i, j) as usize;
                let yi = bit_interleave(j, i) as usize;
                std::mem::swap(&mut x[xi], &mut y[yi]);
            }
        }
        return;
    }
    let [x0, x1, x2, x3] = quads_mut(x);
    let [y0, y1, y2, y3] = quads_mut(y);
    // The four-child collection as a 4-way scope over disjoint quadrant borrows; three
    // spawned branches fit the inline slots, the fourth is the scope body.
    rws_runtime::scope(|s| {
        s.spawn(|_| swap_transpose_rec(x0, y0, m / 2, base));
        s.spawn(|_| swap_transpose_rec(x1, y2, m / 2, base));
        s.spawn(|_| swap_transpose_rec(x2, y1, m / 2, base));
        swap_transpose_rec(x3, y3, m / 2, base);
    });
}

/// Native fork-join conversion of a row-major `n × n` matrix into a fresh BI-ordered
/// buffer — the fast tree computation of [`rm_to_bi_computation`] (Lemma 4.6): each
/// quadrant of the (contiguous) BI destination is filled by an independent branch reading
/// the corresponding aligned submatrix of the shared row-major source.
pub fn rm_to_bi_native(rm: &[f64], n: usize, base: usize) -> Vec<f64> {
    assert!(n.is_power_of_two() && base.is_power_of_two() && base >= 1 && base <= n);
    assert_eq!(rm.len(), n * n);
    let mut out = vec![0.0; n * n];
    rm_to_bi_rec(rm, n, 0, 0, n, &mut out, base);
    out
}

fn rm_to_bi_rec(
    rm: &[f64],
    n: usize,
    i0: usize,
    j0: usize,
    m: usize,
    out: &mut [f64],
    base: usize,
) {
    if m <= base {
        for di in 0..m {
            for dj in 0..m {
                out[bit_interleave(di as u64, dj as u64) as usize] = rm[(i0 + di) * n + (j0 + dj)];
            }
        }
        return;
    }
    let h = m / 2;
    let [q0, q1, q2, q3] = quads_mut(out);
    rws_runtime::scope(|s| {
        s.spawn(|_| rm_to_bi_rec(rm, n, i0, j0, h, q0, base));
        s.spawn(|_| rm_to_bi_rec(rm, n, i0, j0 + h, h, q1, base));
        s.spawn(|_| rm_to_bi_rec(rm, n, i0 + h, j0, h, q2, base));
        rm_to_bi_rec(rm, n, i0 + h, j0 + h, h, q3, base);
    });
}

/// Native fork-join conversion of a BI-ordered `n × n` matrix into a fresh row-major
/// buffer — the paper's log²-depth algorithm of [`bi_to_rm_computation`] (Lemma 4.7): each
/// quadrant converts into its own local array in one parallel collection, then a parallel
/// row-merge pass interleaves quadrant rows into the destination.
pub fn bi_to_rm_native(bi: &[f64], n: usize, base: usize) -> Vec<f64> {
    assert!(n.is_power_of_two() && base.is_power_of_two() && base >= 1 && base <= n);
    assert_eq!(bi.len(), n * n);
    bi_to_rm_rec(bi, n, base)
}

/// Convert the contiguous BI `m × m` submatrix `bi` into an owned row-major array — the
/// native analogue of the dag's per-call local result array.
fn bi_to_rm_rec(bi: &[f64], m: usize, base: usize) -> Vec<f64> {
    if m <= base {
        let mut out = vec![0.0; m * m];
        for di in 0..m {
            for dj in 0..m {
                out[di * m + dj] = bi[bit_interleave(di as u64, dj as u64) as usize];
            }
        }
        return out;
    }
    let h = m / 2;
    let quarter = h * h;
    let (q0, q1, q2, q3) = (
        &bi[..quarter],
        &bi[quarter..2 * quarter],
        &bi[2 * quarter..3 * quarter],
        &bi[3 * quarter..],
    );
    // 4-way scope with value-returning branches: three write their local result arrays
    // into slots the scope body's frame owns, the fourth is the body itself.
    let (mut t0, mut t1, mut t2) = (None, None, None);
    let t3 = rws_runtime::scope(|s| {
        s.spawn(|_| t0 = Some(bi_to_rm_rec(q0, h, base)));
        s.spawn(|_| t1 = Some(bi_to_rm_rec(q1, h, base)));
        s.spawn(|_| t2 = Some(bi_to_rm_rec(q2, h, base)));
        bi_to_rm_rec(q3, h, base)
    });
    let (t0, t1, t2) =
        (t0.expect("scope ran TL"), t1.expect("scope ran TR"), t2.expect("scope ran BL"));
    // Merge pass: one branch per output row; row i (< h) interleaves TL row i and TR row
    // i, row i (>= h) interleaves BL and BR rows (the dag's row-merge tree).
    let mut out = vec![0.0; m * m];
    par_chunks_mut(&mut out, m, &|i, row: &mut [f64]| {
        let (left, right, r) = if i < h { (&t0, &t1, i) } else { (&t2, &t3, i - h) };
        row[..h].copy_from_slice(&left[r * h..(r + 1) * h]);
        row[h..].copy_from_slice(&right[r * h..(r + 1) * h]);
    });
    out
}

// ------------------------------------------------------------------------------------------
// RM -> BI conversion (fast tree computation, Lemma 4.6)
// ------------------------------------------------------------------------------------------

/// Build the computation converting an `n × n` row-major matrix at address 0 into BI layout
/// at address `n²`, with `base × base` tiles.
pub fn rm_to_bi_computation(n: usize, base: usize) -> Computation {
    assert!(n.is_power_of_two() && base.is_power_of_two() && base <= n);
    let n2 = (n * n) as u64;
    let mut b = SpDagBuilder::new();
    let tiles = n / base;
    let mut leaves = Vec::with_capacity(tiles * tiles);
    // Leaves in BI order of tiles so each writes a contiguous destination range.
    for tile in 0..(tiles * tiles) as u64 {
        let (ti, tj) = crate::layout::bit_deinterleave(tile);
        let (i0, j0) = (ti * base as u64, tj * base as u64);
        let mut unit = WorkUnit::compute((base * base) as u64);
        for di in 0..base as u64 {
            for dj in 0..base as u64 {
                unit = unit.read(Addr((i0 + di) * n as u64 + (j0 + dj)));
            }
        }
        let dst = n2 + bit_interleave(i0, j0);
        unit = unit.writes((dst..dst + (base * base) as u64).map(Addr));
        leaves.push(b.leaf(unit));
    }
    let root = combine(&mut b, &leaves);
    let dag = b.build(root).expect("rm->bi dag must validate");
    Computation::new(dag, AlgoMeta::bp("rm-to-bi", n2).with_base_case((base * base) as u64))
}

// ------------------------------------------------------------------------------------------
// BI -> RM conversion (the paper's log²-depth, block-miss-frugal version, Lemma 4.7)
// ------------------------------------------------------------------------------------------

/// Build the computation converting an `n × n` BI matrix at address 0 into row-major layout
/// at address `n²` using the paper's recursive algorithm: convert each quadrant into a local
/// array, then merge the four quadrant-RM arrays into the destination row by row.
pub fn bi_to_rm_computation(n: usize, base: usize) -> Computation {
    assert!(n.is_power_of_two() && base.is_power_of_two() && base <= n);
    let n2 = (n * n) as u64;
    let mut b = SpDagBuilder::new();
    let root = build_bi_to_rm(&mut b, 0, Dest::Global { base: n2 }, n as u64, base as u64, 0);
    let dag = b.build(root).expect("bi->rm dag must validate");
    let mut meta =
        AlgoMeta::hbp2("bi-to-rm", n2, 1, Shrink::Quarter).with_base_case((base * base) as u64);
    meta.local_space = rws_dag::SpaceBound::Linear;
    Computation::new(dag, meta)
}

/// Convert the BI submatrix of dimension `m` at `src` into an RM array of `m²` words at
/// `dest` (row-major within the submatrix).
fn build_bi_to_rm(
    b: &mut SpDagBuilder,
    src: u64,
    dest: Dest,
    m: u64,
    base: u64,
    ctx_depth: u32,
) -> NodeId {
    if m <= base {
        let m2 = m * m;
        let at_depth = ctx_depth + 1;
        let mut unit = WorkUnit::compute(m2).reads((src..src + m2).map(Addr));
        unit = dest.write_range(unit, 0..m2, at_depth);
        return b.leaf(unit);
    }
    let h = m / 2;
    let s = h * h;
    // The call's Seq declares a local array holding the four quadrant-RM conversions.
    let seq_depth = ctx_depth + 1;
    let local = |q: u64| Dest::Local {
        depth: seq_depth,
        offset: u32::try_from(q * s).expect("local quadrant offset"),
    };
    let child_depth = seq_depth + balanced_levels(4);
    let quads: Vec<NodeId> = (0..4u64)
        .map(|q| build_bi_to_rm(b, src + bi_quadrant_offset(q, m), local(q), h, base, child_depth))
        .collect();
    let converted = combine(b, &quads);

    // Merge pass: one leaf per output row; row i (< h) interleaves TL row i and TR row i,
    // row i (>= h) interleaves BL and BR rows. Reads are from the local array, writes go to
    // contiguous ranges of the destination: the regular pattern of Section 6.
    let rows = m as usize;
    let levels = balanced_levels(rows.next_power_of_two());
    let leaf_depth = seq_depth + levels + 1;
    let mut row_leaves = Vec::with_capacity(rows);
    for i in 0..m {
        let (left_q, right_q, r) = if i < h { (0, 1, i) } else { (2, 3, i - h) };
        let mut unit = WorkUnit::compute(m);
        unit = local(left_q).read_range(unit, r * h..(r + 1) * h, leaf_depth);
        unit = local(right_q).read_range(unit, r * h..(r + 1) * h, leaf_depth);
        unit = dest.write_range(unit, i * m..(i + 1) * m, leaf_depth);
        row_leaves.push(b.leaf(unit));
    }
    let merge = combine(b, &row_leaves);
    b.seq_with_segment(vec![converted, merge], u32::try_from(4 * s).expect("segment"))
}

/// Sequential reference conversions between RM and BI vectors (for `f64` data).
pub fn rm_to_bi_reference(rm: &[f64], n: usize) -> Vec<f64> {
    crate::matmul::to_bi(rm, n)
}

/// Sequential reference conversion from BI back to RM.
pub fn bi_to_rm_reference(bi: &[f64], n: usize) -> Vec<f64> {
    crate::matmul::from_bi(bi, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_reference_is_involutive() {
        let n = 8;
        let a: Vec<f64> = (0..n * n).map(|x| x as f64).collect();
        let t = transpose_reference(&a, n);
        assert_eq!(transpose_reference(&t, n), a);
        // Entry (i=1, j=0) of the transpose equals entry (i=0, j=1) of the original.
        assert_eq!(t[n], a[1]);
    }

    #[test]
    fn transpose_dag_touches_every_word_once_or_twice() {
        let comp = transpose_bi_computation(16, 4);
        assert!(comp.check_properties().is_empty());
        assert_eq!(comp.dag.global_footprint_words(), 16 * 16);
        // Diagonal tiles write their words once; swapped tiles also once each.
        assert_eq!(comp.dag.max_writes_per_global_word(), 1);
        // Work is Θ(n²).
        let w = comp.dag.work();
        assert!((256..2000).contains(&w), "transpose work should be Θ(n²), got {w}");
    }

    #[test]
    fn transpose_span_is_logarithmic() {
        let small = transpose_bi_computation(16, 4).dag.span_nodes();
        let large = transpose_bi_computation(64, 4).dag.span_nodes();
        assert!(large > small, "more levels, longer critical path");
        assert!(large < small + 60, "span must grow additively: {small} -> {large}");
    }

    #[test]
    fn rm_to_bi_structure() {
        let n = 16;
        let comp = rm_to_bi_computation(n, 4);
        assert!(comp.check_properties().is_empty());
        assert_eq!(comp.dag.leaf_count(), ((n / 4) * (n / 4)) as u64);
        assert_eq!(comp.dag.max_writes_per_global_word(), 1);
        // Reads the whole source and writes the whole destination exactly once.
        assert_eq!(comp.dag.total_global_accesses(), 2 * (n * n) as u64);
    }

    #[test]
    fn bi_to_rm_has_log_squared_structure_and_extra_work() {
        let n = 32;
        let comp = bi_to_rm_computation(n, 4);
        assert!(comp.check_properties().is_empty());
        // W = Θ(n² log n) > the fast conversion's Θ(n²).
        let fast = rm_to_bi_computation(n, 4);
        assert!(comp.dag.work() > fast.dag.work());
        assert_eq!(comp.dag.max_writes_per_global_word(), 1);
        // Output written exactly once per word.
        assert_eq!(comp.dag.global_footprint_words(), 2 * (n * n) as u64);
    }

    #[test]
    fn conversion_references_roundtrip() {
        let n = 8;
        let a: Vec<f64> = (0..n * n).map(|x| x as f64 * 0.5).collect();
        let bi = rm_to_bi_reference(&a, n);
        assert_eq!(bi_to_rm_reference(&bi, n), a);
    }

    #[test]
    fn native_conversions_match_the_references_outside_a_pool() {
        // Outside a pool worker the joins run sequentially; correctness is identical.
        for (n, base) in [(1usize, 1usize), (2, 1), (8, 2), (16, 4), (16, 16)] {
            let a: Vec<f64> = (0..n * n).map(|x| x as f64 * 0.25 - 3.0).collect();
            assert_eq!(rm_to_bi_native(&a, n, base), rm_to_bi_reference(&a, n), "rm->bi n={n}");
            let bi = rm_to_bi_reference(&a, n);
            assert_eq!(bi_to_rm_native(&bi, n, base), a, "bi->rm n={n}");
        }
    }

    #[test]
    fn native_transpose_matches_the_reference_through_the_layout() {
        for (n, base) in [(1usize, 1usize), (4, 2), (8, 2), (16, 4), (8, 8)] {
            let a: Vec<f64> = (0..n * n).map(|x| (x * 7 % 13) as f64).collect();
            let mut bi = rm_to_bi_reference(&a, n);
            transpose_native_bi(&mut bi, n, base);
            assert_eq!(bi_to_rm_reference(&bi, n), transpose_reference(&a, n), "n = {n}");
        }
    }

    #[test]
    fn native_transpose_is_involutive() {
        let (n, base) = (16usize, 4usize);
        let a: Vec<f64> = (0..n * n).map(|x| x as f64).collect();
        let mut bi = rm_to_bi_reference(&a, n);
        transpose_native_bi(&mut bi, n, base);
        transpose_native_bi(&mut bi, n, base);
        assert_eq!(bi_to_rm_reference(&bi, n), a);
    }
}
