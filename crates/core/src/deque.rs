//! The simulated per-processor work queue.
//!
//! Matches the paper's description in Section 2: a processor pushes newly created stealable
//! tasks at the *bottom* of its queue and pops its own work from the bottom; thieves steal
//! from the *top*, so the oldest (largest) outstanding forked task is taken first.

use rws_dag::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One stealable entry: the right child of a fork, together with enough information for a
/// thief to reconstruct the execution context.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DequeEntry {
    /// The task instance that performed the fork.
    pub owner_task: u32,
    /// The fork (`Par`) node whose right child this entry represents.
    pub par_node: NodeId,
    /// The right child to execute.
    pub child: NodeId,
    /// Length of the owner task's segment chain at the time of the fork (including the fork's
    /// own segment). A thief copies exactly this prefix so that local accesses of the stolen
    /// subtree resolve to the victim's live segments.
    pub chain_len: u32,
}

/// A double-ended work queue of stealable entries.
#[derive(Clone, Debug, Default)]
pub struct SimDeque {
    entries: VecDeque<DequeEntry>,
}

impl SimDeque {
    /// Create an empty deque.
    pub fn new() -> Self {
        SimDeque::default()
    }

    /// Number of stealable entries currently queued.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there is nothing to steal.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Push a newly forked entry at the bottom (owner side).
    pub fn push_bottom(&mut self, entry: DequeEntry) {
        self.entries.push_back(entry);
    }

    /// Pop the newest entry from the bottom (owner side).
    pub fn pop_bottom(&mut self) -> Option<DequeEntry> {
        self.entries.pop_back()
    }

    /// Look at the newest entry without removing it.
    pub fn peek_bottom(&self) -> Option<&DequeEntry> {
        self.entries.back()
    }

    /// Steal the oldest entry from the top (thief side).
    pub fn steal_top(&mut self) -> Option<DequeEntry> {
        self.entries.pop_front()
    }

    /// Look at the oldest entry without removing it.
    pub fn peek_top(&self) -> Option<&DequeEntry> {
        self.entries.front()
    }

    /// Iterate from top (oldest) to bottom (newest).
    pub fn iter(&self) -> impl Iterator<Item = &DequeEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(node: u32) -> DequeEntry {
        DequeEntry { owner_task: 0, par_node: NodeId(node), child: NodeId(node + 1), chain_len: 1 }
    }

    #[test]
    fn lifo_for_owner() {
        let mut d = SimDeque::new();
        d.push_bottom(entry(1));
        d.push_bottom(entry(2));
        d.push_bottom(entry(3));
        assert_eq!(d.pop_bottom().unwrap().par_node, NodeId(3));
        assert_eq!(d.pop_bottom().unwrap().par_node, NodeId(2));
        assert_eq!(d.pop_bottom().unwrap().par_node, NodeId(1));
        assert!(d.pop_bottom().is_none());
    }

    #[test]
    fn fifo_for_thief() {
        let mut d = SimDeque::new();
        d.push_bottom(entry(1));
        d.push_bottom(entry(2));
        d.push_bottom(entry(3));
        assert_eq!(d.steal_top().unwrap().par_node, NodeId(1));
        assert_eq!(d.steal_top().unwrap().par_node, NodeId(2));
        assert_eq!(d.steal_top().unwrap().par_node, NodeId(3));
        assert!(d.steal_top().is_none());
    }

    #[test]
    fn owner_and_thief_meet_in_the_middle() {
        let mut d = SimDeque::new();
        for i in 0..4 {
            d.push_bottom(entry(i));
        }
        assert_eq!(d.steal_top().unwrap().par_node, NodeId(0));
        assert_eq!(d.pop_bottom().unwrap().par_node, NodeId(3));
        assert_eq!(d.steal_top().unwrap().par_node, NodeId(1));
        assert_eq!(d.pop_bottom().unwrap().par_node, NodeId(2));
        assert!(d.is_empty());
    }

    #[test]
    fn peeks_do_not_remove() {
        let mut d = SimDeque::new();
        d.push_bottom(entry(1));
        d.push_bottom(entry(2));
        assert_eq!(d.peek_top().unwrap().par_node, NodeId(1));
        assert_eq!(d.peek_bottom().unwrap().par_node, NodeId(2));
        assert_eq!(d.len(), 2);
        let order: Vec<u32> = d.iter().map(|e| e.par_node.0).collect();
        assert_eq!(order, vec![1, 2]);
    }
}
