//! # rws-core
//!
//! The randomized work-stealing (RWS) scheduler simulator — the primary contribution of
//! *Analysis of Randomized Work Stealing with False Sharing* (Cole & Ramachandran) turned
//! into an executable system.
//!
//! The scheduler executes a series-parallel computation ([`rws_dag::SpDag`]) on `p` simulated
//! processors, each with a private cache, following the paper's execution model:
//!
//! * every processor keeps a **work queue**; newly forked (stealable) tasks are pushed at the
//!   bottom, the owner pops from the bottom, thieves steal from the top;
//! * an idle processor picks a victim **uniformly at random** and attempts to steal; a
//!   successful steal costs `s` time units and a failed one `O(s)`;
//! * executing a dag node costs one time unit per operation plus `b` per cache or block miss,
//!   with misses determined by the coherence-aware memory system of `rws-machine`;
//! * each stolen task gets a fresh, block-aligned **execution stack** (Property 4.3); its
//!   accesses to segments of its ancestors go to the victim's stack, which is exactly how the
//!   paper's block misses (false sharing) on stacks arise;
//! * when the processor executing a stolen task is the last to reach a join it **usurps** the
//!   parent task and continues it (Definition 4.7 and the surrounding discussion).
//!
//! The result of a run is a [`RunReport`] with the quantities the paper's theorems bound:
//! number of successful and failed steals, time spent stealing, cache misses, block misses,
//! false-sharing misses, block transfers (block delay, Definition 4.1), usurpations and the
//! simulated makespan. The [`potential`] module additionally computes the potential function
//! and node heights used in the proofs of Theorems 5.1 and 6.1–6.4 so that experiments can
//! check the phase lemmas empirically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod deque;
pub mod potential;
pub mod report;
pub mod scheduler;
pub mod stack;
pub mod task;

pub use config::SimConfig;
pub use deque::{DequeEntry, SimDeque};
pub use potential::{HeightAssignment, PotentialSample, PotentialTracker};
pub use report::{RunReport, StealEvent};
pub use scheduler::RwsScheduler;
pub use stack::{StackAllocator, TaskStack};

pub use rws_machine::{MachineConfig, MemStats, ProcId};
