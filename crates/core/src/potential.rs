//! The potential function of Section 5.
//!
//! Each vertex `u` of the dag is assigned a cost `e1 + b·E` (fork vertices get an additional
//! `2s`), and its *height* `h(u)` is `1/s` times the maximum cost of a path descending from
//! `u` to the end of the computation. A task on a queue has potential `2^{1+h(u)}`, an
//! executing task `2^{h(u) - x/s}` after `x` units of work, and the total potential `φ` is
//! the sum over all live vertices. Lemmas 5.1 and 5.2 show `φ` drops by a constant factor in
//! every steal phase (in expectation) and by `(1 - b/4s)` in every computation phase, which
//! is what bounds the number of steals (Theorem 5.1).
//!
//! Potentials are astronomically large (`2^h` with `h` in the hundreds or thousands), so this
//! module works in the log2 domain throughout.

use rws_dag::{NodeId, SpDag, SpStructure, WorkUnit};
use serde::{Deserialize, Serialize};

/// Heights `h(u)` (in units of the steal cost `s`) of the *entry vertex* of every dag node,
/// measured to the end of the whole computation (not just the node's subtree).
#[derive(Clone, Debug)]
pub struct HeightAssignment {
    heights: Vec<f64>,
    join_heights: Vec<f64>,
    root_height: f64,
}

impl HeightAssignment {
    /// Compute heights for `dag` with miss cost `b`, steal cost `s` and per-node miss bound
    /// `e_bound` (the paper's `E`, measured in misses). When `e_bound` is `None` each work
    /// unit is charged one potential miss per access it performs.
    pub fn new(dag: &SpDag, miss_cost: u64, steal_cost: u64, e_bound: Option<u64>) -> Self {
        let s = steal_cost.max(1) as f64;
        let b = miss_cost as f64;
        let unit_cost = |w: &WorkUnit| -> f64 {
            let misses = e_bound.unwrap_or(w.access_count()) as f64;
            (w.base_cost() as f64 + b * misses) / s
        };
        let mut heights = vec![0.0f64; dag.len()];
        let mut join_heights = vec![0.0f64; dag.len()];
        // Heights are computed top-down: the entry height of a node is the cost of the longest
        // path through its subtree plus the height of whatever follows it (its "tail").
        Self::compute_rec(dag, dag.root(), 0.0, &unit_cost, &mut heights, &mut join_heights);
        let root_height = heights[dag.root().index()];
        HeightAssignment { heights, join_heights, root_height }
    }

    fn compute_rec(
        dag: &SpDag,
        id: NodeId,
        tail: f64,
        unit_cost: &dyn Fn(&WorkUnit) -> f64,
        heights: &mut Vec<f64>,
        join_heights: &mut Vec<f64>,
    ) {
        match &dag.node(id).structure {
            SpStructure::Leaf { work, .. } => {
                heights[id.index()] = unit_cost(work) + tail;
                join_heights[id.index()] = tail;
            }
            SpStructure::Seq { children, .. } => {
                let mut t = tail;
                for &c in children.iter().rev() {
                    Self::compute_rec(dag, c, t, unit_cost, heights, join_heights);
                    t = heights[c.index()];
                }
                heights[id.index()] = heights[children[0].index()];
                join_heights[id.index()] = tail;
            }
            SpStructure::Par { fork, join, left, right, .. } => {
                let join_h = unit_cost(join) + tail;
                Self::compute_rec(dag, *left, join_h, unit_cost, heights, join_heights);
                Self::compute_rec(dag, *right, join_h, unit_cost, heights, join_heights);
                let fork_h = unit_cost(fork) + 2.0;
                heights[id.index()] = fork_h + heights[left.index()].max(heights[right.index()]);
                join_heights[id.index()] = join_h;
            }
        }
    }

    /// Height of node `u`'s entry vertex.
    pub fn height(&self, u: NodeId) -> f64 {
        self.heights[u.index()]
    }

    /// Height of node `u`'s *join* vertex (for `Par` nodes: the up-pass vertex executed after
    /// both children complete; for other nodes: the height of whatever follows the node).
    pub fn join_height(&self, u: NodeId) -> f64 {
        self.join_heights[u.index()]
    }

    /// log2 of the potential of a task that is executing the up-pass (join side) of node `u`.
    pub fn log_potential_at_join(&self, u: NodeId) -> f64 {
        self.join_height(u)
    }

    /// Height of the root `h(t)` — the quantity appearing in Theorem 5.1's steal bound
    /// `O(p · h(t) · (1 + a))`.
    pub fn root_height(&self) -> f64 {
        self.root_height
    }

    /// log2 of the potential `2^{1 + h(u)}` of a queued task rooted at `u`.
    pub fn log_potential_queued(&self, u: NodeId) -> f64 {
        1.0 + self.height(u)
    }

    /// log2 of the potential `2^{h(u)}` of a task currently executing at `u` (progress within
    /// the node is ignored — this is instrumentation, not part of the proof).
    pub fn log_potential_executing(&self, u: NodeId) -> f64 {
        self.height(u)
    }
}

/// log2 of a sum of powers of two given their exponents (a numerically stable log-sum-exp in
/// base 2). Returns negative infinity for an empty slice.
pub fn log2_sum_exp2(exponents: &[f64]) -> f64 {
    if exponents.is_empty() {
        return f64::NEG_INFINITY;
    }
    let max = exponents.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f64 = exponents.iter().map(|&x| (x - max).exp2()).sum();
    max + sum.log2()
}

/// One sample of the potential function during a run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PotentialSample {
    /// Simulated time of the sample.
    pub time: u64,
    /// log2 of the total potential φ.
    pub log2_phi: f64,
    /// Number of queued (stealable) entries across all processors.
    pub queued: u32,
    /// Number of processors currently executing a task.
    pub executing: u32,
    /// Cumulative successful steals at the time of the sample.
    pub steals_so_far: u64,
}

/// Collects potential samples during a run.
#[derive(Clone, Debug, Default)]
pub struct PotentialTracker {
    samples: Vec<PotentialSample>,
}

impl PotentialTracker {
    /// Create an empty tracker.
    pub fn new() -> Self {
        PotentialTracker::default()
    }

    /// Record a sample.
    pub fn record(&mut self, sample: PotentialSample) {
        self.samples.push(sample);
    }

    /// All recorded samples in time order.
    pub fn samples(&self) -> &[PotentialSample] {
        &self.samples
    }

    /// Consume the tracker and return its samples.
    pub fn into_samples(self) -> Vec<PotentialSample> {
        self.samples
    }

    /// The fraction of consecutive sample pairs in which the potential did not increase
    /// (Lemmas 5.1 / 5.2 imply the potential never increases; small increases can appear in
    /// this instrumentation because executing-task progress is not subtracted).
    pub fn non_increasing_fraction(&self) -> f64 {
        if self.samples.len() < 2 {
            return 1.0;
        }
        let mut ok = 0usize;
        for w in self.samples.windows(2) {
            if w[1].log2_phi <= w[0].log2_phi + 1e-9 {
                ok += 1;
            }
        }
        ok as f64 / (self.samples.len() - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rws_dag::{SpDagBuilder, WorkUnit};

    fn two_level_dag() -> SpDag {
        // par( par(a, b), par(c, d) ) with unit leaves.
        let mut b = SpDagBuilder::new();
        let leaves: Vec<NodeId> = (0..4).map(|_| b.leaf(WorkUnit::compute(1))).collect();
        let p1 = b.par(WorkUnit::compute(1), WorkUnit::compute(1), leaves[0], leaves[1]);
        let p2 = b.par(WorkUnit::compute(1), WorkUnit::compute(1), leaves[2], leaves[3]);
        let root = b.par(WorkUnit::compute(1), WorkUnit::compute(1), p1, p2);
        b.build(root).unwrap()
    }

    #[test]
    fn heights_decrease_downward() {
        let dag = two_level_dag();
        let h = HeightAssignment::new(&dag, 4, 8, Some(0));
        let root = dag.root();
        for (id, node) in dag.iter() {
            for c in node.children() {
                assert!(
                    h.height(c) < h.height(id),
                    "child {c:?} must have smaller height than parent {id:?}"
                );
            }
        }
        assert!(h.root_height() > 0.0);
        assert_eq!(h.root_height(), h.height(root));
    }

    #[test]
    fn fork_adds_at_least_two() {
        let dag = two_level_dag();
        let h = HeightAssignment::new(&dag, 4, 8, Some(0));
        for (id, node) in dag.iter() {
            if let SpStructure::Par { left, right, .. } = &node.structure {
                let child_max = h.height(*left).max(h.height(*right));
                assert!(h.height(id) >= child_max + 2.0, "fork must add at least 2 to the height");
            }
        }
    }

    #[test]
    fn root_height_scales_with_span_and_miss_cost() {
        let dag = two_level_dag();
        let cheap = HeightAssignment::new(&dag, 1, 8, Some(0)).root_height();
        let pricey = HeightAssignment::new(&dag, 64, 8, Some(4)).root_height();
        assert!(pricey > cheap);
    }

    #[test]
    fn seq_heights_accumulate() {
        let mut b = SpDagBuilder::new();
        let l1 = b.leaf(WorkUnit::compute(8));
        let l2 = b.leaf(WorkUnit::compute(8));
        let root = b.seq(vec![l1, l2]);
        let dag = b.build(root).unwrap();
        let h = HeightAssignment::new(&dag, 1, 8, Some(0));
        // Second leaf executes after the first: the first leaf's entry height includes it.
        assert!(h.height(NodeId(0)) > h.height(NodeId(1)));
        assert_eq!(h.root_height(), h.height(NodeId(0)));
    }

    #[test]
    fn log_sum_exp_basics() {
        assert_eq!(log2_sum_exp2(&[]), f64::NEG_INFINITY);
        assert!((log2_sum_exp2(&[3.0]) - 3.0).abs() < 1e-12);
        // 2^3 + 2^3 = 2^4.
        assert!((log2_sum_exp2(&[3.0, 3.0]) - 4.0).abs() < 1e-12);
        // Huge exponents do not overflow.
        let v = log2_sum_exp2(&[10_000.0, 9_999.0]);
        assert!(v > 10_000.0 && v < 10_001.0);
    }

    #[test]
    fn tracker_non_increasing_fraction() {
        let mut t = PotentialTracker::new();
        for (i, phi) in [10.0, 9.0, 9.0, 8.5, 9.5].iter().enumerate() {
            t.record(PotentialSample {
                time: i as u64,
                log2_phi: *phi,
                queued: 0,
                executing: 1,
                steals_so_far: 0,
            });
        }
        // 3 of 4 consecutive pairs are non-increasing.
        assert!((t.non_increasing_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(t.samples().len(), 5);
    }

    #[test]
    fn potential_log_values() {
        let dag = two_level_dag();
        let h = HeightAssignment::new(&dag, 4, 8, None);
        let u = dag.root();
        assert!((h.log_potential_queued(u) - (1.0 + h.height(u))).abs() < 1e-12);
        assert!((h.log_potential_executing(u) - h.height(u)).abs() < 1e-12);
    }
}
