//! Scheduler simulation parameters (everything that is not part of the machine model).

use serde::{Deserialize, Serialize};

/// Simulation options for one scheduler run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Seed of the pseudo-random number generator driving victim selection. Runs with the
    /// same seed, machine and dag are bit-for-bit reproducible.
    pub seed: u64,
    /// Round every execution-stack segment up to a whole number of blocks. This corresponds
    /// to the "padded" algorithm variants the paper mentions (Remark 4.1): it removes false
    /// sharing between stack segments at the price of extra space, and is used as an ablation.
    pub pad_segments: bool,
    /// Record one [`crate::StealEvent`] per successful steal (time, thief, victim, node).
    pub collect_steal_events: bool,
    /// Track the potential function of Section 5 during the run (adds `O(p + queue length)`
    /// work per sample; samples are taken at every successful steal and at computation-phase
    /// boundaries).
    pub track_potential: bool,
    /// Safety limit on the number of scheduler events; a run exceeding it panics (this only
    /// triggers on scheduler bugs, never on legitimate computations of sensible size).
    pub max_events: u64,
    /// Extra words reserved per task stack beyond the dag's worst-case sequential stack need
    /// (headroom for block alignment).
    pub stack_headroom_words: u64,
}

impl SimConfig {
    /// Default options with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        SimConfig { seed, ..Default::default() }
    }

    /// Builder-style: enable segment padding.
    pub fn padded(mut self) -> Self {
        self.pad_segments = true;
        self
    }

    /// Builder-style: record steal events.
    pub fn with_steal_events(mut self) -> Self {
        self.collect_steal_events = true;
        self
    }

    /// Builder-style: enable potential-function tracking.
    pub fn with_potential_tracking(mut self) -> Self {
        self.track_potential = true;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0x5EED_CAFE,
            pad_segments: false,
            collect_steal_events: false,
            track_potential: false,
            max_events: 2_000_000_000,
            stack_headroom_words: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let c = SimConfig::with_seed(7).padded().with_steal_events().with_potential_tracking();
        assert_eq!(c.seed, 7);
        assert!(c.pad_segments);
        assert!(c.collect_steal_events);
        assert!(c.track_potential);
    }

    #[test]
    fn default_is_unpadded_and_quiet() {
        let c = SimConfig::default();
        assert!(!c.pad_segments);
        assert!(!c.collect_steal_events);
        assert!(!c.track_potential);
        assert!(c.max_events > 1_000_000);
    }
}
