//! Execution-stack allocation for tasks.
//!
//! Following the paper's Space Allocation Property (Property 4.3), every task — the original
//! task and each stolen task — receives its own stack region whose base is block-aligned, so
//! stack allocations of different tasks never share a block. Within a task the segments of
//! its fork and leaf nodes are bump-allocated and popped in LIFO order, so siblings reuse the
//! same addresses — the reuse that Lemma 4.4 has to reason about.

use rws_machine::addr::STACK_REGION_BASE;
use serde::{Deserialize, Serialize};

/// A task's private stack region.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskStack {
    /// First word of the region (block-aligned).
    pub base: u64,
    /// Current allocation top (next free word).
    pub top: u64,
    /// One past the last usable word.
    pub limit: u64,
    /// High-water mark of `top` over the task's lifetime.
    pub peak: u64,
}

impl TaskStack {
    /// Push a segment of `words` words and return its base address.
    ///
    /// Panics if the reservation is exhausted (which indicates the caller under-estimated the
    /// stack bound when configuring the [`StackAllocator`]).
    pub fn push_segment(&mut self, words: u64) -> u64 {
        assert!(
            self.top + words <= self.limit,
            "task stack overflow: need {} words, {} available",
            words,
            self.limit - self.top
        );
        let base = self.top;
        self.top += words;
        self.peak = self.peak.max(self.top);
        base
    }

    /// Pop the most recent `words`-word segment.
    pub fn pop_segment(&mut self, words: u64) {
        debug_assert!(self.top >= self.base + words, "popping more stack than was pushed");
        self.top -= words;
    }

    /// Words currently in use.
    pub fn used_words(&self) -> u64 {
        self.top - self.base
    }

    /// Peak usage in words.
    pub fn peak_words(&self) -> u64 {
        self.peak - self.base
    }
}

/// Allocates disjoint, block-aligned stack regions for tasks.
#[derive(Clone, Debug)]
pub struct StackAllocator {
    next_base: u64,
    block_words: u64,
    reserve_words: u64,
    allocated_tasks: u64,
}

impl StackAllocator {
    /// Create an allocator that reserves `reserve_words` words per task (rounded up to whole
    /// blocks of `block_words` words).
    pub fn new(block_words: u64, reserve_words: u64) -> Self {
        assert!(block_words > 0);
        let reserve = reserve_words.max(1);
        let reserve = reserve.div_ceil(block_words) * block_words;
        // Align the start of the stack region to a block boundary so that every task stack
        // base is block-aligned even for block sizes that do not divide the region base.
        let first_base = STACK_REGION_BASE.div_ceil(block_words) * block_words;
        StackAllocator {
            next_base: first_base,
            block_words,
            reserve_words: reserve,
            allocated_tasks: 0,
        }
    }

    /// Reserve a fresh stack region for a new task.
    pub fn new_task_stack(&mut self) -> TaskStack {
        let base = self.next_base;
        debug_assert_eq!(base % self.block_words, 0, "stack bases are block-aligned");
        self.next_base += self.reserve_words;
        self.allocated_tasks += 1;
        TaskStack { base, top: base, limit: base + self.reserve_words, peak: base }
    }

    /// Number of task stacks handed out so far.
    pub fn allocated_tasks(&self) -> u64 {
        self.allocated_tasks
    }

    /// Per-task reservation in words (after rounding to blocks).
    pub fn reserve_words(&self) -> u64 {
        self.reserve_words
    }

    /// Total words of stack address space reserved so far.
    pub fn total_reserved_words(&self) -> u64 {
        self.allocated_tasks * self.reserve_words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservation_is_block_rounded() {
        let a = StackAllocator::new(8, 10);
        assert_eq!(a.reserve_words(), 16);
        let a = StackAllocator::new(8, 16);
        assert_eq!(a.reserve_words(), 16);
        let a = StackAllocator::new(8, 0);
        assert_eq!(a.reserve_words(), 8);
    }

    #[test]
    fn task_stacks_are_disjoint_and_aligned() {
        let mut a = StackAllocator::new(8, 20);
        let s1 = a.new_task_stack();
        let s2 = a.new_task_stack();
        assert_eq!(s1.base % 8, 0);
        assert_eq!(s2.base % 8, 0);
        assert!(s1.limit <= s2.base, "regions must not overlap");
        assert_eq!(a.allocated_tasks(), 2);
        assert_eq!(a.total_reserved_words(), 2 * a.reserve_words());
    }

    #[test]
    fn push_pop_lifo_reuses_addresses() {
        let mut a = StackAllocator::new(8, 64);
        let mut s = a.new_task_stack();
        let seg1 = s.push_segment(4);
        s.pop_segment(4);
        let seg2 = s.push_segment(4);
        assert_eq!(seg1, seg2, "siblings reuse the same stack addresses");
        assert_eq!(s.used_words(), 4);
        assert_eq!(s.peak_words(), 4);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut a = StackAllocator::new(8, 64);
        let mut s = a.new_task_stack();
        s.push_segment(10);
        s.push_segment(20);
        s.pop_segment(20);
        s.pop_segment(10);
        assert_eq!(s.used_words(), 0);
        assert_eq!(s.peak_words(), 30);
    }

    #[test]
    #[should_panic(expected = "task stack overflow")]
    fn overflow_panics() {
        let mut a = StackAllocator::new(8, 8);
        let mut s = a.new_task_stack();
        s.push_segment(9);
    }

    #[test]
    fn stacks_start_in_stack_region() {
        let mut a = StackAllocator::new(8, 8);
        let s = a.new_task_stack();
        assert!(s.base >= STACK_REGION_BASE);
    }
}
