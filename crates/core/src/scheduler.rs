//! The randomized work-stealing scheduler simulator.
//!
//! The simulator executes a series-parallel dag on `p` virtual processors under the paper's
//! execution model (Section 2): per-processor work queues with bottom push/pop and top
//! steals, uniformly random victim selection, steal cost `s` (failed steals `O(s)`), node
//! execution cost `1` per operation plus `b` per cache or block miss, per-task block-aligned
//! execution stacks (Property 4.3) and usurpation at joins (Definition 4.7).
//!
//! The simulation is a discrete-event loop: processors are kept in a min-heap ordered by the
//! time at which they next become free; the earliest one performs one action (execute a dag
//! node, pop/steal work, or fail a steal) and is re-queued. Memory accesses go through the
//! coherence-aware [`rws_machine::MemorySystem`], which classifies each miss as a cache miss
//! or a block miss (false sharing).
//!
//! ### Fidelity notes
//!
//! * Steals take entries from the *top* of the victim's queue, so the stolen task is always
//!   the shallowest outstanding fork of the victim — Observation 4.1's structure (stolen
//!   tasks are right children along a single path `P_τ`, stolen top-down) emerges naturally
//!   and is checked by tests and by experiment E18.
//! * A stolen task receives a fresh, block-aligned stack region; its accesses to segments of
//!   enclosing forks resolve into the victim task's stack, reproducing the stack block
//!   sharing analyzed in Lemmas 4.3/4.4.
//! * When a processor's task suspends at a join whose other side is not finished, the
//!   processor becomes idle; the last processor to reach the join continues the parent task
//!   (a *usurpation* when that processor differs from the one that ran the parent before).
//! * Idle processors whose steal attempts find **all** queues empty are parked and woken when
//!   the next fork pushes an entry; the failed attempts they would have made are accounted
//!   synthetically so steal-time statistics are preserved without simulating billions of
//!   no-op events.

use crate::config::SimConfig;
use crate::deque::{DequeEntry, SimDeque};
use crate::potential::{log2_sum_exp2, HeightAssignment, PotentialSample, PotentialTracker};
use crate::report::{RunReport, StealEvent};
use crate::stack::StackAllocator;
use crate::task::{Frame, JoinState, SegEntry, TaskId, TaskInstance, TaskOrigin};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rws_dag::{Computation, NodeId, SpDag, SpStructure, WorkUnit};
use rws_machine::{Access, Addr, MachineConfig, MemorySystem, ProcId, Region};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The randomized work-stealing scheduler: configure once, run many computations.
#[derive(Clone, Debug)]
pub struct RwsScheduler {
    machine: MachineConfig,
    sim: SimConfig,
}

impl RwsScheduler {
    /// Create a scheduler for the given machine and simulation options.
    pub fn new(machine: MachineConfig, sim: SimConfig) -> Self {
        machine.validate().expect("invalid machine configuration");
        RwsScheduler { machine, sim }
    }

    /// Create a scheduler with default simulation options.
    pub fn with_machine(machine: MachineConfig) -> Self {
        Self::new(machine, SimConfig::default())
    }

    /// The machine configuration.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The simulation options.
    pub fn sim_config(&self) -> &SimConfig {
        &self.sim
    }

    /// Run a classified computation.
    pub fn run(&self, computation: &Computation) -> RunReport {
        self.run_dag(&computation.dag)
    }

    /// Run a bare dag.
    pub fn run_dag(&self, dag: &SpDag) -> RunReport {
        Sim::new(&self.machine, &self.sim, dag).run()
    }
}

struct ProcState {
    current: Option<TaskId>,
    time: u64,
    parked: bool,
    park_start: u64,
}

struct Sim<'a> {
    dag: &'a SpDag,
    machine: MachineConfig,
    sim: SimConfig,
    memory: MemorySystem,
    procs: Vec<ProcState>,
    deques: Vec<SimDeque>,
    tasks: Vec<TaskInstance>,
    joins: Vec<JoinState>,
    stack_alloc: StackAllocator,
    rng: SmallRng,
    heights: Option<HeightAssignment>,
    potential: PotentialTracker,

    successful_steals: u64,
    failed_steals: u64,
    steal_time: u64,
    usurpations: u64,
    local_pops: u64,
    work_executed: u64,
    nodes_executed: u64,
    busy_time: u64,
    steal_events: Vec<StealEvent>,
    finished: bool,
    makespan: u64,
    pushed_entry_flag: bool,
    events: u64,
}

impl<'a> Sim<'a> {
    fn new(machine: &MachineConfig, sim: &SimConfig, dag: &'a SpDag) -> Self {
        let p = machine.procs;
        let mut reserve = dag.sequential_stack_words() + sim.stack_headroom_words;
        if sim.pad_segments {
            // Every segment can grow to the next block boundary.
            reserve += (dag.max_segment_depth() + 1) * machine.block_words;
        }
        let heights = if sim.track_potential {
            Some(HeightAssignment::new(dag, machine.miss_cost, machine.steal_cost, None))
        } else {
            None
        };
        Sim {
            dag,
            machine: machine.clone(),
            sim: sim.clone(),
            memory: MemorySystem::new(machine.clone()),
            procs: (0..p)
                .map(|_| ProcState { current: None, time: 0, parked: false, park_start: 0 })
                .collect(),
            deques: (0..p).map(|_| SimDeque::new()).collect(),
            tasks: Vec::new(),
            joins: vec![JoinState::default(); dag.len()],
            stack_alloc: StackAllocator::new(machine.block_words, reserve),
            rng: SmallRng::seed_from_u64(sim.seed),
            heights,
            potential: PotentialTracker::new(),
            successful_steals: 0,
            failed_steals: 0,
            steal_time: 0,
            usurpations: 0,
            local_pops: 0,
            work_executed: 0,
            nodes_executed: 0,
            busy_time: 0,
            steal_events: Vec::new(),
            finished: false,
            makespan: 0,
            pushed_entry_flag: false,
            events: 0,
        }
    }

    fn run(mut self) -> RunReport {
        // The original task starts on processor 0.
        let root_stack = self.stack_alloc.new_task_stack();
        self.tasks.push(TaskInstance::new(
            TaskId(0),
            TaskOrigin::Root,
            self.dag.root(),
            Vec::new(),
            root_stack,
            None,
        ));
        self.set_current(ProcId(0), TaskId(0));

        let mut heap: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for p in 0..self.machine.procs {
            heap.push(Reverse((0, seq, p)));
            seq += 1;
        }

        while let Some(Reverse((t, _, p))) = heap.pop() {
            if self.finished {
                break;
            }
            self.events += 1;
            assert!(
                self.events <= self.sim.max_events,
                "simulation exceeded the configured event limit ({})",
                self.sim.max_events
            );
            debug_assert_eq!(self.procs[p].time, t, "heap time must match processor time");
            let cost = self.step(ProcId(p));
            self.procs[p].time = t + cost;
            if self.finished {
                self.makespan = self.procs[p].time;
            }
            if self.pushed_entry_flag {
                self.pushed_entry_flag = false;
                let now = self.procs[p].time;
                for q in 0..self.machine.procs {
                    if self.procs[q].parked {
                        self.unpark(q, now);
                        heap.push(Reverse((self.procs[q].time, seq, q)));
                        seq += 1;
                    }
                }
            }
            if self.sim.track_potential && self.events.is_multiple_of(256) {
                self.sample_potential();
            }
            if !self.finished && !self.procs[p].parked {
                heap.push(Reverse((self.procs[p].time, seq, p)));
                seq += 1;
            }
        }
        assert!(self.finished, "scheduler deadlock: computation did not complete");

        // Account for the steal attempts parked processors would have made until completion.
        for q in 0..self.machine.procs {
            if self.procs[q].parked {
                let end = self.makespan;
                self.unpark(q, end);
            }
        }
        self.build_report()
    }

    // ----- per-event actions ---------------------------------------------------------------

    fn step(&mut self, p: ProcId) -> u64 {
        match self.procs[p.index()].current {
            Some(tid) => self.advance_task(p, tid),
            None => self.acquire_work(p),
        }
    }

    fn acquire_work(&mut self, p: ProcId) -> u64 {
        // Own queue first (no steal cost): this only triggers in exotic schedules; normally a
        // processor's queue is empty whenever it is idle.
        if let Some(entry) = self.deques[p.index()].pop_bottom() {
            let tid = self.spawn_task(entry, TaskOrigin::LocalPop);
            self.local_pops += 1;
            self.set_current(p, tid);
            return 1;
        }
        if self.machine.procs == 1 {
            self.park(p);
            return 0;
        }
        // Random victim among the other processors.
        let victim = {
            let v = self.rng.gen_range(0..self.machine.procs - 1);
            if v >= p.index() {
                v + 1
            } else {
                v
            }
        };
        if let Some(entry) = self.deques[victim].steal_top() {
            self.successful_steals += 1;
            self.steal_time += self.machine.steal_cost;
            self.joins[entry.par_node.index()].right_stolen = true;
            let tid = self.spawn_task(entry, TaskOrigin::Stolen);
            self.set_current(p, tid);
            if self.sim.collect_steal_events {
                self.steal_events.push(StealEvent {
                    time: self.procs[p.index()].time + self.machine.steal_cost,
                    thief: p,
                    victim: ProcId(victim),
                    par_node: entry.par_node,
                    child: entry.child,
                });
            }
            if self.sim.track_potential {
                self.sample_potential();
            }
            self.machine.steal_cost
        } else if self.all_deques_empty() {
            self.park(p);
            0
        } else {
            self.failed_steals += 1;
            self.steal_time += self.machine.failed_steal_cost;
            self.machine.failed_steal_cost
        }
    }

    fn advance_task(&mut self, p: ProcId, tid: TaskId) -> u64 {
        if let Some(node) = self.tasks[tid.index()].resume_join.take() {
            return self.exec_join_and_pop(p, tid, node);
        }
        loop {
            let entering = self.tasks[tid.index()].entering.take();
            if let Some(node) = entering {
                match &self.dag.node(node).structure {
                    SpStructure::Seq { children, seg_words } => {
                        let (first, seg_words) = (children[0], *seg_words);
                        if seg_words > 0 {
                            self.push_segment(tid, seg_words);
                        }
                        self.tasks[tid.index()].frames.push(Frame::Seq { node, next: 0 });
                        self.tasks[tid.index()].entering = Some(first);
                        continue;
                    }
                    SpStructure::Leaf { work, seg_words } => {
                        let (work, seg_words) = (work.clone(), *seg_words);
                        self.push_segment(tid, seg_words);
                        let cost = self.exec_unit(p, tid, &work);
                        self.pop_segment(tid);
                        return cost;
                    }
                    SpStructure::Par { fork, left, right, seg_words, .. } => {
                        let (fork, left, right, seg_words) =
                            (fork.clone(), *left, *right, *seg_words);
                        self.push_segment(tid, seg_words);
                        let cost = self.exec_unit(p, tid, &fork);
                        let chain_len = self.tasks[tid.index()].seg_chain.len() as u32;
                        self.deques[p.index()].push_bottom(DequeEntry {
                            owner_task: tid.0,
                            par_node: node,
                            child: right,
                            chain_len,
                        });
                        self.pushed_entry_flag = true;
                        self.tasks[tid.index()].frames.push(Frame::Par { node });
                        self.tasks[tid.index()].entering = Some(left);
                        return cost;
                    }
                }
            }
            let frame = self.tasks[tid.index()].frames.pop();
            match frame {
                None => return self.complete_task(p, tid),
                Some(Frame::Seq { node, next }) => {
                    let (children, seg_words) = match &self.dag.node(node).structure {
                        SpStructure::Seq { children, seg_words } => (children, *seg_words),
                        _ => unreachable!("Seq frame on a non-Seq node"),
                    };
                    let next = next + 1;
                    if (next as usize) < children.len() {
                        let child = children[next as usize];
                        self.tasks[tid.index()].frames.push(Frame::Seq { node, next });
                        self.tasks[tid.index()].entering = Some(child);
                    } else if seg_words > 0 {
                        // The sequence (and the procedure locals it modelled) is finished.
                        self.pop_segment(tid);
                    }
                    continue;
                }
                Some(Frame::Par { node }) => {
                    let right_here = self.deques[p.index()]
                        .peek_bottom()
                        .map(|e| e.par_node == node)
                        .unwrap_or(false);
                    if right_here {
                        let entry = self.deques[p.index()].pop_bottom().expect("peeked entry");
                        debug_assert_eq!(entry.owner_task, tid.0);
                        self.tasks[tid.index()].frames.push(Frame::ParRight { node });
                        self.tasks[tid.index()].entering = Some(entry.child);
                        continue;
                    }
                    let arrived = {
                        let j = &mut self.joins[node.index()];
                        j.arrived += 1;
                        j.arrived
                    };
                    if arrived >= 2 {
                        return self.exec_join_and_pop(p, tid, node);
                    }
                    // Suspend: the thief that finishes the stolen right child will resume us.
                    self.tasks[tid.index()].resume_join = Some(node);
                    self.procs[p.index()].current = None;
                    return 0;
                }
                Some(Frame::ParRight { node }) => {
                    return self.exec_join_and_pop(p, tid, node);
                }
            }
        }
    }

    fn complete_task(&mut self, p: ProcId, tid: TaskId) -> u64 {
        self.procs[p.index()].current = None;
        match self.tasks[tid.index()].parent {
            None => {
                self.finished = true;
                0
            }
            Some((parent, par_node)) => {
                let arrived = {
                    let j = &mut self.joins[par_node.index()];
                    j.arrived += 1;
                    j.arrived
                };
                if arrived >= 2 {
                    // We are the last to reach the join: continue the parent task here.
                    let previous = self.tasks[parent.index()].last_proc;
                    if previous != Some(p) {
                        self.usurpations += 1;
                    }
                    debug_assert!(
                        self.tasks[parent.index()].resume_join.is_some(),
                        "a parent reached by the second child must be suspended at its join"
                    );
                    self.set_current(p, parent);
                }
                0
            }
        }
    }

    fn exec_join_and_pop(&mut self, p: ProcId, tid: TaskId, node: NodeId) -> u64 {
        let join = match &self.dag.node(node).structure {
            SpStructure::Par { join, .. } => join.clone(),
            _ => unreachable!("join of a non-Par node"),
        };
        let cost = self.exec_unit(p, tid, &join);
        self.pop_segment(tid);
        cost
    }

    // ----- helpers -------------------------------------------------------------------------

    fn spawn_task(&mut self, entry: DequeEntry, origin: TaskOrigin) -> TaskId {
        let chain: Vec<SegEntry> = self.tasks[entry.owner_task as usize].seg_chain
            [..entry.chain_len as usize]
            .iter()
            .map(|e| SegEntry { own: false, ..*e })
            .collect();
        let stack = self.stack_alloc.new_task_stack();
        let tid = TaskId(self.tasks.len() as u32);
        self.tasks.push(TaskInstance::new(
            tid,
            origin,
            entry.child,
            chain,
            stack,
            Some((TaskId(entry.owner_task), entry.par_node)),
        ));
        tid
    }

    fn set_current(&mut self, p: ProcId, tid: TaskId) {
        self.tasks[tid.index()].last_proc = Some(p);
        self.procs[p.index()].current = Some(tid);
    }

    fn push_segment(&mut self, tid: TaskId, seg_words: u32) {
        let words = if self.sim.pad_segments && seg_words > 0 {
            (seg_words as u64).div_ceil(self.machine.block_words) * self.machine.block_words
        } else {
            seg_words as u64
        };
        let task = &mut self.tasks[tid.index()];
        let base = task.stack.push_segment(words);
        task.seg_chain.push(SegEntry { base, words, own: true });
    }

    fn pop_segment(&mut self, tid: TaskId) {
        let task = &mut self.tasks[tid.index()];
        let seg = task.seg_chain.pop().expect("segment chain underflow");
        debug_assert!(seg.own, "a task may only pop segments it pushed itself");
        task.stack.pop_segment(seg.words);
    }

    fn exec_unit(&mut self, p: ProcId, tid: TaskId, unit: &WorkUnit) -> u64 {
        let mut cost = unit.base_cost();
        self.work_executed += unit.base_cost();
        self.nodes_executed += 1;
        self.tasks[tid.index()].nodes_executed += 1;
        for a in &unit.global {
            let out = self.memory.access(p, *a);
            if !out.is_hit() {
                cost += self.machine.miss_cost;
            }
        }
        for la in &unit.locals {
            let (base, words) = {
                let chain = &self.tasks[tid.index()].seg_chain;
                let seg = chain[chain.len() - 1 - la.hops as usize];
                (seg.base, seg.words)
            };
            debug_assert!((la.offset as u64) < words, "local access outside its segment");
            let addr = Addr(base + la.offset as u64);
            let out = self.memory.access(p, Access { addr, write: la.write });
            if !out.is_hit() {
                cost += self.machine.miss_cost;
            }
        }
        self.busy_time += cost;
        cost
    }

    fn all_deques_empty(&self) -> bool {
        self.deques.iter().all(|d| d.is_empty())
    }

    fn park(&mut self, p: ProcId) {
        let ps = &mut self.procs[p.index()];
        ps.parked = true;
        ps.park_start = ps.time;
    }

    fn unpark(&mut self, q: usize, now: u64) {
        let fail_cost = self.machine.failed_steal_cost.max(1);
        let ps = &mut self.procs[q];
        let duration = now.saturating_sub(ps.park_start);
        let attempts = duration / fail_cost;
        ps.parked = false;
        ps.time = now;
        self.failed_steals += attempts;
        self.steal_time += attempts * fail_cost;
    }

    fn sample_potential(&mut self) {
        let heights = match &self.heights {
            Some(h) => h,
            None => return,
        };
        let mut exps = Vec::new();
        let mut queued = 0u32;
        for d in &self.deques {
            for e in d.iter() {
                exps.push(heights.log_potential_queued(e.child));
                queued += 1;
            }
        }
        let mut executing = 0u32;
        for ps in &self.procs {
            if let Some(tid) = ps.current {
                let t = &self.tasks[tid.index()];
                // A task descending into a node contributes 2^{h(entry)}; a task that is on
                // its way back up (at or after a join) contributes 2^{h(join)}.
                let contribution = if let Some(n) = t.entering {
                    Some(heights.log_potential_executing(n))
                } else if let Some(n) = t.resume_join {
                    Some(heights.log_potential_at_join(n))
                } else {
                    t.frames.last().map(|f| match f {
                        Frame::Seq { node, .. } => heights.log_potential_executing(*node),
                        Frame::Par { node } | Frame::ParRight { node } => {
                            heights.log_potential_at_join(*node)
                        }
                    })
                };
                if let Some(c) = contribution {
                    exps.push(c);
                    executing += 1;
                }
            }
        }
        let time = self.procs.iter().map(|p| p.time).max().unwrap_or(0);
        self.potential.record(PotentialSample {
            time,
            log2_phi: log2_sum_exp2(&exps),
            queued,
            executing,
            steals_so_far: self.successful_steals,
        });
    }

    fn build_report(self) -> RunReport {
        let block_words = self.machine.block_words;
        let mut stack_transfers = 0u64;
        let mut global_transfers = 0u64;
        let mut max_stack = 0u64;
        let mut max_global = 0u64;
        for (block, state) in self.memory.directory().iter() {
            match block.region(block_words) {
                Region::Stack => {
                    stack_transfers += state.transfers;
                    max_stack = max_stack.max(state.transfers);
                }
                Region::Global => {
                    global_transfers += state.transfers;
                    max_global = max_global.max(state.transfers);
                }
            }
        }
        let peak_stack_words: u64 = self.tasks.iter().map(|t| t.stack.peak_words()).sum();
        RunReport {
            machine: Some(self.machine.clone()),
            makespan: self.makespan,
            successful_steals: self.successful_steals,
            failed_steals: self.failed_steals,
            steal_time: self.steal_time,
            usurpations: self.usurpations,
            local_pops: self.local_pops,
            work_executed: self.work_executed,
            nodes_executed: self.nodes_executed,
            busy_time: self.busy_time,
            mem: self.memory.stats().clone(),
            stack_block_transfers: stack_transfers,
            global_block_transfers: global_transfers,
            max_stack_block_transfers: max_stack,
            max_global_block_transfers: max_global,
            tasks_created: self.tasks.len() as u64,
            peak_stack_words,
            steal_events: self.steal_events,
            potential_trace: self.potential.into_samples(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rws_dag::builders::balanced_par;
    use rws_dag::{SequentialTracer, SpDagBuilder};

    fn machine(p: usize) -> MachineConfig {
        MachineConfig::small().with_procs(p)
    }

    /// A balanced tree of `leaves` leaves, each doing `leaf_ops` operations and writing one
    /// distinct word of a global output array.
    fn tree_dag(leaves: usize, leaf_ops: u64) -> SpDag {
        let mut b = SpDagBuilder::new();
        let leaf_ids: Vec<NodeId> = (0..leaves)
            .map(|i| b.leaf(WorkUnit::compute(leaf_ops).write(Addr(i as u64))))
            .collect();
        let root = balanced_par(&mut b, &leaf_ids, 2);
        b.build(root).unwrap()
    }

    #[test]
    fn single_processor_matches_sequential_costs() {
        let dag = tree_dag(16, 8);
        let report = RwsScheduler::with_machine(machine(1)).run_dag(&dag);
        let seq = SequentialTracer::new(&machine(1)).run(&dag);
        assert_eq!(report.successful_steals, 0);
        assert_eq!(report.work_executed, dag.work());
        assert_eq!(report.cache_misses(), seq.cache_misses);
        assert_eq!(report.block_misses(), 0);
        assert_eq!(report.block_delay(), 0);
        assert_eq!(report.usurpations, 0);
        assert_eq!(report.tasks_created, 1);
        assert_eq!(report.makespan, seq.time);
    }

    #[test]
    fn work_is_conserved_across_processor_counts() {
        let dag = tree_dag(32, 4);
        for p in [1, 2, 3, 4, 7] {
            let report = RwsScheduler::with_machine(machine(p)).run_dag(&dag);
            assert_eq!(report.work_executed, dag.work(), "work must not be lost or duplicated");
            assert_eq!(report.nodes_executed, dag.leaf_count() + 2 * dag.fork_count());
        }
    }

    #[test]
    fn parallel_run_steals_and_speeds_up() {
        let dag = tree_dag(64, 64);
        let seq = SequentialTracer::new(&machine(4)).run(&dag);
        let report = RwsScheduler::with_machine(machine(4)).run_dag(&dag);
        assert!(report.successful_steals > 0, "a 4-processor run of a wide tree must steal");
        assert!(
            report.makespan < seq.time,
            "parallel makespan {} should beat sequential {}",
            report.makespan,
            seq.time
        );
        assert_eq!(report.tasks_created, 1 + report.successful_steals + report.local_pops);
    }

    #[test]
    fn two_heavy_leaves_share_a_block_and_cause_block_misses() {
        // The left side writes word 0 twice (with a long pause in between); the stolen right
        // leaf writes word 1 of the same block in the meantime. The second left write then
        // finds its copy invalidated by a write to a *different* word: false sharing.
        let mut b = SpDagBuilder::new();
        let l1 = b.leaf(WorkUnit::compute(400).write(Addr(0)));
        let l2 = b.leaf(WorkUnit::compute(1).write(Addr(0)));
        let left = b.seq(vec![l1, l2]);
        let r = b.leaf(WorkUnit::compute(1).write(Addr(1)));
        let root = b.par(WorkUnit::compute(1), WorkUnit::compute(1), left, r);
        let dag = b.build(root).unwrap();
        let report = RwsScheduler::with_machine(machine(2)).run_dag(&dag);
        assert_eq!(report.successful_steals, 1);
        assert!(report.block_misses() > 0, "interleaved writes to one block must block-miss");
        assert!(report.false_sharing_misses() > 0, "the writes are to different words");
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let dag = tree_dag(64, 16);
        let sched = RwsScheduler::new(machine(4), SimConfig::with_seed(42));
        let a = sched.run_dag(&dag);
        let b = sched.run_dag(&dag);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.successful_steals, b.successful_steals);
        assert_eq!(a.failed_steals, b.failed_steals);
        assert_eq!(a.mem, b.mem);
    }

    #[test]
    fn different_seeds_usually_differ() {
        let dag = tree_dag(64, 16);
        let a = RwsScheduler::new(machine(4), SimConfig::with_seed(1)).run_dag(&dag);
        let b = RwsScheduler::new(machine(4), SimConfig::with_seed(2)).run_dag(&dag);
        // Not guaranteed in principle, but overwhelmingly likely; this guards against the RNG
        // being ignored.
        assert!(
            a.makespan != b.makespan
                || a.successful_steals != b.successful_steals
                || a.failed_steals != b.failed_steals
        );
    }

    #[test]
    fn steal_events_are_not_recorded_by_default() {
        // The event log is opt-in (`SimConfig::with_steal_events`): a long simulation with
        // the default config must not grow an unbounded per-steal log nobody reads.
        let dag = tree_dag(64, 32);
        let report = RwsScheduler::with_machine(machine(4)).run_dag(&dag);
        assert!(report.successful_steals > 0, "the run must steal for this test to mean anything");
        assert!(report.steal_events.is_empty(), "no steal events without the opt-in flag");
    }

    #[test]
    fn steal_events_are_recorded_when_requested() {
        let dag = tree_dag(32, 32);
        let report =
            RwsScheduler::new(machine(4), SimConfig::default().with_steal_events()).run_dag(&dag);
        assert_eq!(report.steal_events.len() as u64, report.successful_steals);
        for w in report.steal_events.windows(2) {
            assert!(w[0].time <= w[1].time, "steal events are recorded in time order");
        }
    }

    #[test]
    fn potential_is_tracked_and_mostly_non_increasing() {
        let dag = tree_dag(32, 32);
        let report = RwsScheduler::new(machine(4), SimConfig::default().with_potential_tracking())
            .run_dag(&dag);
        assert!(!report.potential_trace.is_empty());
        let mut tracker = PotentialTracker::new();
        for s in &report.potential_trace {
            tracker.record(*s);
        }
        assert!(
            tracker.non_increasing_fraction() > 0.8,
            "potential should essentially never increase"
        );
    }

    #[test]
    fn padded_segments_still_produce_correct_runs() {
        let dag = tree_dag(32, 8);
        let plain = RwsScheduler::new(machine(4), SimConfig::with_seed(3)).run_dag(&dag);
        let padded = RwsScheduler::new(machine(4), SimConfig::with_seed(3).padded()).run_dag(&dag);
        assert_eq!(plain.work_executed, padded.work_executed);
        assert_eq!(plain.nodes_executed, padded.nodes_executed);
    }

    #[test]
    fn stolen_tasks_access_parent_stack_segments() {
        // The right leaf writes into the fork's segment; when it is stolen, that write goes
        // to the victim's stack block — a cross-stack access that must be visible as a
        // transfer of a stack-region block.
        let mut b = SpDagBuilder::new();
        let l = b.leaf(WorkUnit::compute(200).local_write(1, 0));
        let r = b.leaf(WorkUnit::compute(1).local_write(1, 1));
        let root = b.par_with_segment(WorkUnit::compute(1), WorkUnit::compute(1), l, r, 2);
        let dag = b.build(root).unwrap();
        let report = RwsScheduler::with_machine(machine(2)).run_dag(&dag);
        assert_eq!(report.successful_steals, 1);
        assert!(report.stack_block_transfers > 0, "the fork segment's block must move");
    }

    #[test]
    fn usurpation_happens_when_thief_finishes_last() {
        // Left leaf is tiny, right leaf is huge: the owner finishes the left child and
        // suspends; the thief finishes the right child last and usurps the parent task.
        let mut b = SpDagBuilder::new();
        let l = b.leaf(WorkUnit::compute(1));
        let r = b.leaf(WorkUnit::compute(10_000));
        let root = b.par(WorkUnit::compute(1), WorkUnit::compute(1), l, r);
        let dag = b.build(root).unwrap();
        let report = RwsScheduler::with_machine(machine(2)).run_dag(&dag);
        assert_eq!(report.successful_steals, 1);
        assert_eq!(report.usurpations, 1);
    }

    #[test]
    fn makespan_is_at_least_the_critical_path() {
        let dag = tree_dag(64, 16);
        for p in [2, 4, 8] {
            let report = RwsScheduler::with_machine(machine(p)).run_dag(&dag);
            assert!(report.makespan >= dag.span_ops());
            assert!(report.makespan >= dag.work() / p as u64);
        }
    }

    #[test]
    fn seq_composition_executes_in_order_and_completely() {
        // seq(tree, tree): both halves execute; work adds up.
        let mut b = SpDagBuilder::new();
        let leaves1: Vec<NodeId> =
            (0..8).map(|i| b.leaf(WorkUnit::compute(5).write(Addr(i)))).collect();
        let t1 = balanced_par(&mut b, &leaves1, 1);
        let leaves2: Vec<NodeId> =
            (0..8).map(|i| b.leaf(WorkUnit::compute(5).write(Addr(100 + i)))).collect();
        let t2 = balanced_par(&mut b, &leaves2, 1);
        let root = b.seq(vec![t1, t2]);
        let dag = b.build(root).unwrap();
        let report = RwsScheduler::with_machine(machine(3)).run_dag(&dag);
        assert_eq!(report.work_executed, dag.work());
    }

    #[test]
    fn failed_steals_are_counted() {
        // A dag with a long sequential prefix: other processors have nothing to steal for a
        // while, so they must record failed attempts (possibly via parking accounting).
        let mut b = SpDagBuilder::new();
        let prefix = b.leaf(WorkUnit::compute(10_000));
        let leaves: Vec<NodeId> = (0..4).map(|_| b.leaf(WorkUnit::compute(100))).collect();
        let tree = balanced_par(&mut b, &leaves, 1);
        let root = b.seq(vec![prefix, tree]);
        let dag = b.build(root).unwrap();
        let report = RwsScheduler::with_machine(machine(4)).run_dag(&dag);
        assert!(report.failed_steals > 0);
        assert!(report.steal_time > 0);
    }
}
