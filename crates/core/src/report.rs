//! Results of one scheduler run: every quantity the paper's analysis bounds.

use crate::potential::PotentialSample;
use rws_dag::NodeId;
use rws_machine::{MachineConfig, MemStats, ProcId};
use serde::{Deserialize, Serialize};

/// One successful steal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StealEvent {
    /// Simulated time at which the steal completed.
    pub time: u64,
    /// The stealing processor.
    pub thief: ProcId,
    /// The victim processor.
    pub victim: ProcId,
    /// The fork node whose right child was stolen.
    pub par_node: NodeId,
    /// The stolen child node (root of the stolen task's subtree).
    pub child: NodeId,
}

/// Aggregate results of a run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// The machine the run was simulated on.
    pub machine: Option<MachineConfig>,
    /// Simulated completion time of the computation (the parallel runtime `T_p`).
    pub makespan: u64,
    /// Number of successful steals `S`.
    pub successful_steals: u64,
    /// Number of failed steal attempts.
    pub failed_steals: u64,
    /// Total time spent on steals (successful and failed) summed over all processors.
    pub steal_time: u64,
    /// Number of usurpations: joins at which the processor that continues the parent task is
    /// not the processor that previously executed it (Definition 4.7 discussion).
    pub usurpations: u64,
    /// Queue entries executed by the processor that pushed them, as separate task instances,
    /// after their original task suspended (not steals).
    pub local_pops: u64,
    /// Total operations executed (should equal the dag's work `W`).
    pub work_executed: u64,
    /// Total dag nodes executed.
    pub nodes_executed: u64,
    /// Total time processors spent executing dag nodes (including miss delays).
    pub busy_time: u64,
    /// Memory-system statistics (cache misses, block misses, false sharing, transfers).
    pub mem: MemStats,
    /// Cache-to-cache transfers of blocks in the execution-stack region.
    pub stack_block_transfers: u64,
    /// Cache-to-cache transfers of blocks in the global region.
    pub global_block_transfers: u64,
    /// The largest number of transfers suffered by any single execution-stack block
    /// (empirical counterpart of the `Y(|τ|, B)` bound of Lemma 4.4).
    pub max_stack_block_transfers: u64,
    /// The largest number of transfers suffered by any single global-region block.
    pub max_global_block_transfers: u64,
    /// Number of task instances created (1 + steals + local pops).
    pub tasks_created: u64,
    /// Peak simulated space usage: global footprint + stack words actually touched (words).
    pub peak_stack_words: u64,
    /// Successful-steal events (only if requested in [`crate::SimConfig`]).
    pub steal_events: Vec<StealEvent>,
    /// Potential-function samples (only if requested in [`crate::SimConfig`]).
    pub potential_trace: Vec<PotentialSample>,
}

impl RunReport {
    /// Sequential-style cache misses (cold + capacity) over all processors.
    pub fn cache_misses(&self) -> u64 {
        self.mem.cache_misses()
    }

    /// Block misses (coherence-induced misses) over all processors.
    pub fn block_misses(&self) -> u64 {
        self.mem.block_misses()
    }

    /// False-sharing misses (block misses where the invalidating write touched another word).
    pub fn false_sharing_misses(&self) -> u64 {
        self.mem.false_sharing_misses()
    }

    /// Total block delay (Definition 4.1) accumulated over all blocks: the number of
    /// cache-to-cache transfers.
    pub fn block_delay(&self) -> u64 {
        self.mem.block_transfers
    }

    /// Parallel speedup with respect to a sequential execution that takes `seq_time` units.
    pub fn speedup(&self, seq_time: u64) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        seq_time as f64 / self.makespan as f64
    }

    /// Average number of block transfers per successful steal — the paper's `O(B)` bound for
    /// Hierarchical Tree Algorithms (Lemma 4.5 and friends) predicts this stays below a small
    /// multiple of `B`.
    pub fn block_delay_per_steal(&self) -> f64 {
        if self.successful_steals == 0 {
            return 0.0;
        }
        self.block_delay() as f64 / self.successful_steals as f64
    }

    /// Steal attempts of any kind.
    pub fn total_steal_attempts(&self) -> u64 {
        self.successful_steals + self.failed_steals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut r = RunReport {
            makespan: 100,
            successful_steals: 4,
            failed_steals: 6,
            ..Default::default()
        };
        r.mem = MemStats::new(2);
        r.mem.proc_mut(ProcId(0)).cold_misses = 3;
        r.mem.proc_mut(ProcId(1)).block_misses = 5;
        r.mem.block_transfers = 8;
        assert_eq!(r.cache_misses(), 3);
        assert_eq!(r.block_misses(), 5);
        assert_eq!(r.block_delay(), 8);
        assert_eq!(r.total_steal_attempts(), 10);
        assert!((r.speedup(400) - 4.0).abs() < 1e-12);
        assert!((r.block_delay_per_steal() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_steals_and_zero_makespan_are_safe() {
        let r = RunReport::default();
        assert_eq!(r.block_delay_per_steal(), 0.0);
        assert_eq!(r.speedup(100), 0.0);
    }
}
