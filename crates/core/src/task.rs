//! Runtime state of task instances (the original task and every stolen or locally re-popped
//! subtask) and the control-flow frames that walk the series-parallel dag.

use crate::stack::TaskStack;
use rws_dag::NodeId;
use rws_machine::ProcId;
use serde::{Deserialize, Serialize};

/// Identifier of a task instance within one simulation run. Task 0 is the original task.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// How a task instance came into being.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskOrigin {
    /// The original task of the computation.
    Root,
    /// Created by a successful steal from another processor's queue.
    Stolen,
    /// Created by a processor popping an entry from its *own* queue after its previous task
    /// suspended or completed (not a steal; no steal cost, no new-stack requirement in the
    /// paper, but we give it a fresh stack region anyway — see the crate documentation of
    /// `scheduler`).
    LocalPop,
}

/// A control-flow frame of a task's walk over the dag.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Frame {
    /// Executing the children of a `Seq` node; `next` is the index of the child currently
    /// being executed.
    Seq {
        /// The sequencing node.
        node: NodeId,
        /// Index of the child currently executing.
        next: u32,
    },
    /// The left child of this `Par` node is currently being executed by this task.
    Par {
        /// The fork/join node.
        node: NodeId,
    },
    /// The right child of this `Par` node is being executed inline by the owner (it was
    /// popped from the bottom of the owner's own queue at the join point).
    ParRight {
        /// The fork/join node.
        node: NodeId,
    },
}

/// One entry of a task's segment chain: a live execution-stack segment of an ancestor (or of
/// the current node).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegEntry {
    /// Base word address of the segment.
    pub base: u64,
    /// Segment size in words (after any padding).
    pub words: u64,
    /// Whether this segment was allocated on this task's own stack (and must therefore be
    /// popped from it) or belongs to an ancestor task.
    pub own: bool,
}

/// The full runtime state of one task instance.
#[derive(Clone, Debug)]
pub struct TaskInstance {
    /// This task's id.
    pub id: TaskId,
    /// How it was created.
    pub origin: TaskOrigin,
    /// Control-flow frames (innermost last).
    pub frames: Vec<Frame>,
    /// The node about to be entered, if the walk is descending.
    pub entering: Option<NodeId>,
    /// Chain of live segments from the computation root down to the current position
    /// (crossing task boundaries: entries of ancestors are `own == false`).
    pub seg_chain: Vec<SegEntry>,
    /// This task's private stack region.
    pub stack: TaskStack,
    /// If this task is not the root: the parent task and the `Par` node whose right child
    /// this task executes.
    pub parent: Option<(TaskId, NodeId)>,
    /// If set, the task was suspended at this `Par` node's join; on resumption the join work
    /// of that node must be executed first.
    pub resume_join: Option<NodeId>,
    /// The processor that most recently executed this task (used to count usurpations).
    pub last_proc: Option<ProcId>,
    /// Number of dag nodes whose work this task instance executed (kernel size proxy).
    pub nodes_executed: u64,
}

impl TaskInstance {
    /// Create a new task instance.
    pub fn new(
        id: TaskId,
        origin: TaskOrigin,
        entering: NodeId,
        seg_chain: Vec<SegEntry>,
        stack: TaskStack,
        parent: Option<(TaskId, NodeId)>,
    ) -> Self {
        TaskInstance {
            id,
            origin,
            frames: Vec::new(),
            entering: Some(entering),
            seg_chain,
            stack,
            parent,
            resume_join: None,
            last_proc: None,
            nodes_executed: 0,
        }
    }

    /// Whether the task has nothing left to do (no frames, nothing being entered, no pending
    /// join to resume).
    pub fn is_complete(&self) -> bool {
        self.frames.is_empty() && self.entering.is_none() && self.resume_join.is_none()
    }
}

/// Per-`Par`-node join bookkeeping shared by all task instances of a run.
#[derive(Clone, Debug, Default)]
pub struct JoinState {
    /// Number of children (left subtree, right subtree) that have completed (0, 1 or 2).
    pub arrived: u8,
    /// Whether the right child was taken from a queue by a processor other than the one that
    /// pushed it (a steal in the paper's sense).
    pub right_stolen: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::StackAllocator;

    #[test]
    fn new_task_is_not_complete_until_drained() {
        let mut alloc = StackAllocator::new(8, 64);
        let mut t = TaskInstance::new(
            TaskId(0),
            TaskOrigin::Root,
            NodeId(0),
            Vec::new(),
            alloc.new_task_stack(),
            None,
        );
        assert!(!t.is_complete());
        t.entering = None;
        assert!(t.is_complete());
        t.resume_join = Some(NodeId(3));
        assert!(!t.is_complete());
    }

    #[test]
    fn task_id_index() {
        assert_eq!(TaskId(5).index(), 5);
    }

    #[test]
    fn join_state_default() {
        let j = JoinState::default();
        assert_eq!(j.arrived, 0);
        assert!(!j.right_stolen);
    }
}
