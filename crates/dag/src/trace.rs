//! Sequential execution tracing: runs a dag on a single simulated processor to obtain the
//! paper's sequential quantities `W` (operation count) and `Q` (sequential cache misses).
//!
//! The tracer resolves symbolic local accesses exactly like a sequential runtime would: a
//! single execution stack, segments pushed when a segment-declaring node starts and popped
//! when it completes, so stack addresses are reused by siblings — the same reuse that makes
//! block misses on stacks possible in the parallel execution.

use crate::access::WorkUnit;
use crate::dag::SpDag;
use crate::node::{NodeId, SpStructure};
use rws_machine::{Access, Addr, MachineConfig, MemorySystem, ProcId};
use serde::{Deserialize, Serialize};

/// Results of a sequential trace.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequentialCosts {
    /// Total operation count `W`.
    pub work: u64,
    /// Sequential cache misses `Q` (cold + capacity; there is no sharing with one processor).
    pub cache_misses: u64,
    /// Total memory accesses performed.
    pub accesses: u64,
    /// Peak execution-stack usage in words.
    pub stack_peak_words: u64,
    /// Total time units of a sequential execution under the paper's cost model:
    /// `W + b * Q`.
    pub time: u64,
}

/// A sequential tracer over a single-processor memory system.
pub struct SequentialTracer {
    memory: MemorySystem,
    stack_base: u64,
}

impl SequentialTracer {
    /// Create a tracer for a machine with the given cache parameters (only `M`, `B` and `b`
    /// matter; the processor count is forced to 1).
    pub fn new(config: &MachineConfig) -> Self {
        let cfg = config.clone().with_procs(1);
        // Align the stack base to a block boundary, matching the runtime's Space Allocation
        // Property (Property 4.3) so sequential and one-processor parallel runs see the same
        // addresses.
        let stack_base =
            rws_machine::addr::STACK_REGION_BASE.div_ceil(cfg.block_words) * cfg.block_words;
        SequentialTracer { memory: MemorySystem::new(cfg), stack_base }
    }

    /// Trace a sequential execution of `dag` and return its costs.
    pub fn run(&mut self, dag: &SpDag) -> SequentialCosts {
        let mut costs = SequentialCosts::default();
        let mut seg_stack: Vec<(u64, u32)> = Vec::new(); // (base address, size)
        let mut stack_top = self.stack_base;
        let mut peak = 0u64;
        self.walk(dag, dag.root(), &mut seg_stack, &mut stack_top, &mut peak, &mut costs);
        costs.cache_misses = self.memory.stats().cache_misses();
        costs.stack_peak_words = peak - self.stack_base;
        costs.time = costs.work + self.memory.config().miss_cost * costs.cache_misses;
        costs
    }

    /// The underlying memory system (for inspecting detailed statistics after a run).
    pub fn memory(&self) -> &MemorySystem {
        &self.memory
    }

    fn exec_unit(
        &mut self,
        unit: &WorkUnit,
        seg_stack: &[(u64, u32)],
        costs: &mut SequentialCosts,
    ) {
        costs.work += unit.base_cost();
        for a in &unit.global {
            self.memory.access(ProcId(0), *a);
            costs.accesses += 1;
        }
        for la in &unit.locals {
            let idx = seg_stack.len() - 1 - la.hops as usize;
            let (base, size) = seg_stack[idx];
            debug_assert!(la.offset < size, "local access outside its segment");
            let addr = Addr(base + la.offset as u64);
            self.memory.access(ProcId(0), Access { addr, write: la.write });
            costs.accesses += 1;
        }
    }

    fn walk(
        &mut self,
        dag: &SpDag,
        id: NodeId,
        seg_stack: &mut Vec<(u64, u32)>,
        stack_top: &mut u64,
        peak: &mut u64,
        costs: &mut SequentialCosts,
    ) {
        let node = dag.node(id);
        match &node.structure {
            SpStructure::Leaf { work, seg_words } => {
                seg_stack.push((*stack_top, *seg_words));
                *stack_top += *seg_words as u64;
                *peak = (*peak).max(*stack_top);
                self.exec_unit(work, seg_stack, costs);
                *stack_top -= *seg_words as u64;
                seg_stack.pop();
            }
            SpStructure::Seq { children, seg_words } => {
                let declares = *seg_words > 0;
                if declares {
                    seg_stack.push((*stack_top, *seg_words));
                    *stack_top += *seg_words as u64;
                    *peak = (*peak).max(*stack_top);
                }
                for &c in children {
                    self.walk(dag, c, seg_stack, stack_top, peak, costs);
                }
                if declares {
                    *stack_top -= *seg_words as u64;
                    seg_stack.pop();
                }
            }
            SpStructure::Par { fork, join, left, right, seg_words } => {
                seg_stack.push((*stack_top, *seg_words));
                *stack_top += *seg_words as u64;
                *peak = (*peak).max(*stack_top);
                self.exec_unit(&fork.clone(), seg_stack, costs);
                self.walk(dag, *left, seg_stack, stack_top, peak, costs);
                self.walk(dag, *right, seg_stack, stack_top, peak, costs);
                self.exec_unit(&join.clone(), seg_stack, costs);
                *stack_top -= *seg_words as u64;
                seg_stack.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::SpDagBuilder;

    fn config() -> MachineConfig {
        MachineConfig::small()
    }

    #[test]
    fn work_matches_dag_work() {
        let mut b = SpDagBuilder::new();
        let l = b.leaf(WorkUnit::compute(3).read(Addr(0)));
        let r = b.leaf(WorkUnit::compute(5).write(Addr(100)));
        let root = b.par(WorkUnit::compute(1), WorkUnit::compute(1), l, r);
        let dag = b.build(root).unwrap();
        let costs = SequentialTracer::new(&config()).run(&dag);
        assert_eq!(costs.work, dag.work());
        assert_eq!(costs.accesses, 2);
    }

    #[test]
    fn cache_misses_counted_per_block() {
        // Two leaves reading 16 consecutive words each, B = 8: 4 blocks -> 4 cold misses.
        let mut b = SpDagBuilder::new();
        let l = b.leaf(WorkUnit::compute(1).reads((0..16).map(Addr)));
        let r = b.leaf(WorkUnit::compute(1).reads((16..32).map(Addr)));
        let root = b.par(WorkUnit::compute(1), WorkUnit::compute(1), l, r);
        let dag = b.build(root).unwrap();
        let costs = SequentialTracer::new(&config()).run(&dag);
        assert_eq!(costs.cache_misses, 4);
        assert_eq!(costs.time, costs.work + 4 * config().miss_cost);
    }

    #[test]
    fn no_block_misses_sequentially() {
        let mut b = SpDagBuilder::new();
        let l = b.leaf(WorkUnit::compute(1).writes((0..8).map(Addr)));
        let r = b.leaf(WorkUnit::compute(1).writes((0..8).map(Addr)));
        let root = b.par(WorkUnit::compute(1), WorkUnit::compute(1), l, r);
        let dag = b.build(root).unwrap();
        let mut tracer = SequentialTracer::new(&config());
        tracer.run(&dag);
        assert_eq!(tracer.memory().stats().block_misses(), 0);
    }

    #[test]
    fn stack_segments_are_pushed_and_reused() {
        // Two sibling leaves each with a 4-word segment: sequentially they reuse the same
        // addresses, so the peak is fork segment (2) + one leaf segment (4).
        let mut b = SpDagBuilder::new();
        let l = b.leaf_with_segment(WorkUnit::compute(1).local_write(0, 0), 4);
        let r = b.leaf_with_segment(WorkUnit::compute(1).local_write(0, 3), 4);
        let root = b.par_with_segment(
            WorkUnit::compute(1),
            WorkUnit::compute(1).local_read(0, 1),
            l,
            r,
            2,
        );
        let dag = b.build(root).unwrap();
        let costs = SequentialTracer::new(&config()).run(&dag);
        assert_eq!(costs.stack_peak_words, 6);
        assert_eq!(costs.accesses, 3);
    }

    #[test]
    fn local_accesses_hit_the_stack_region() {
        let mut b = SpDagBuilder::new();
        let l = b.leaf_with_segment(WorkUnit::compute(1).local_write(0, 0), 1);
        let dag = b.build(l).unwrap();
        let mut tracer = SequentialTracer::new(&config());
        tracer.run(&dag);
        // Exactly one access, and it must be in the stack region: the directory then has one
        // tracked block whose base is in the stack region.
        let dir = tracer.memory().directory();
        assert_eq!(dir.tracked_blocks(), 1);
        let (block, _) = dir.iter().next().unwrap();
        assert_eq!(block.region(config().block_words), rws_machine::Region::Stack);
    }

    #[test]
    fn ancestor_segment_accesses_resolve_upward() {
        // The leaf writes into the fork's segment (hops = 1).
        let mut b = SpDagBuilder::new();
        let l = b.leaf_with_segment(WorkUnit::compute(1).local_write(1, 1), 1);
        let r = b.leaf(WorkUnit::compute(1));
        let root = b.par_with_segment(WorkUnit::compute(1), WorkUnit::compute(1), l, r, 2);
        let dag = b.build(root).unwrap();
        let mut tracer = SequentialTracer::new(&config());
        let costs = tracer.run(&dag);
        assert_eq!(costs.accesses, 1);
        // Only the fork segment's block is touched (offset 1 of the first stack block).
        assert_eq!(tracer.memory().directory().tracked_blocks(), 1);
    }
}
