//! Per-node work descriptions: operation counts, global-array accesses and symbolic
//! local-variable (execution-stack) accesses.

use rws_machine::{Access, Addr};
use serde::{Deserialize, Serialize};

/// A symbolic access to a local variable stored on an execution stack.
///
/// Local variables are declared by fork (and leaf) nodes and live in that node's *segment*
/// on the execution stack of the task executing it (paper, Section 4). Which concrete
/// addresses a segment occupies depends on steals (a stolen task gets a fresh stack while its
/// accesses to ancestors' segments go to the victim's stack), so dag nodes refer to locals
/// symbolically: `hops` ancestor segments up from the node that performs the access, at word
/// `offset` within that segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LocalAccess {
    /// How many segment-declaring ancestors to go up: `0` is the segment declared by the node
    /// performing the access (for leaves and forks), `1` is the nearest enclosing fork's
    /// segment, and so on.
    pub hops: u16,
    /// Word offset within the target segment.
    pub offset: u32,
    /// `true` for a write.
    pub write: bool,
}

impl LocalAccess {
    /// A read of word `offset` of the segment `hops` levels up.
    pub fn read(hops: u16, offset: u32) -> Self {
        LocalAccess { hops, offset, write: false }
    }

    /// A write of word `offset` of the segment `hops` levels up.
    pub fn write(hops: u16, offset: u32) -> Self {
        LocalAccess { hops, offset, write: true }
    }
}

/// The work performed by one dag node: an operation count, a list of global-array accesses
/// (concrete addresses) and a list of symbolic local accesses.
///
/// Work units are attached to leaf nodes and to the fork and join halves of parallel nodes.
/// Each node is a "size O(1) computation" in the paper; nothing in this crate enforces that
/// (leaves of coarsened base cases carry more than O(1) work), but the classification
/// metadata records the base-case granularity so the analysis can account for it.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkUnit {
    /// Number of unit-time operations performed (in addition to memory-access costs).
    pub ops: u64,
    /// Accesses to global arrays (inputs / outputs / arrays declared by calling procedures).
    pub global: Vec<Access>,
    /// Symbolic accesses to execution-stack segments.
    pub locals: Vec<LocalAccess>,
}

impl WorkUnit {
    /// A work unit with `ops` operations and no memory accesses.
    pub fn compute(ops: u64) -> Self {
        WorkUnit { ops, ..Default::default() }
    }

    /// An empty work unit (zero cost). Useful for purely structural nodes.
    pub fn empty() -> Self {
        WorkUnit::default()
    }

    /// Builder-style: add a global read.
    pub fn read(mut self, addr: Addr) -> Self {
        self.global.push(Access::read(addr));
        self
    }

    /// Builder-style: add a global write.
    pub fn write(mut self, addr: Addr) -> Self {
        self.global.push(Access::write(addr));
        self
    }

    /// Builder-style: add many global reads.
    pub fn reads<I: IntoIterator<Item = Addr>>(mut self, addrs: I) -> Self {
        self.global.extend(addrs.into_iter().map(Access::read));
        self
    }

    /// Builder-style: add many global writes.
    pub fn writes<I: IntoIterator<Item = Addr>>(mut self, addrs: I) -> Self {
        self.global.extend(addrs.into_iter().map(Access::write));
        self
    }

    /// Builder-style: add a local (execution-stack) read.
    pub fn local_read(mut self, hops: u16, offset: u32) -> Self {
        self.locals.push(LocalAccess::read(hops, offset));
        self
    }

    /// Builder-style: add a local (execution-stack) write.
    pub fn local_write(mut self, hops: u16, offset: u32) -> Self {
        self.locals.push(LocalAccess::write(hops, offset));
        self
    }

    /// Builder-style: set the operation count.
    pub fn with_ops(mut self, ops: u64) -> Self {
        self.ops = ops;
        self
    }

    /// Total number of memory accesses (global + local).
    pub fn access_count(&self) -> u64 {
        (self.global.len() + self.locals.len()) as u64
    }

    /// Number of global writes in this unit.
    pub fn global_writes(&self) -> u64 {
        self.global.iter().filter(|a| a.write).count() as u64
    }

    /// Whether the unit does nothing at all.
    pub fn is_empty(&self) -> bool {
        self.ops == 0 && self.global.is_empty() && self.locals.is_empty()
    }

    /// The node's cost in unit-time operations excluding memory delays: at least 1 for any
    /// non-empty unit (every executed dag node takes at least one time step).
    pub fn base_cost(&self) -> u64 {
        self.ops.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let w = WorkUnit::compute(3)
            .read(Addr(1))
            .write(Addr(2))
            .reads([Addr(3), Addr(4)])
            .writes([Addr(5)])
            .local_read(0, 0)
            .local_write(1, 1);
        assert_eq!(w.ops, 3);
        assert_eq!(w.global.len(), 5);
        assert_eq!(w.locals.len(), 2);
        assert_eq!(w.access_count(), 7);
        assert_eq!(w.global_writes(), 2);
        assert!(!w.is_empty());
    }

    #[test]
    fn empty_unit() {
        let w = WorkUnit::empty();
        assert!(w.is_empty());
        assert_eq!(w.access_count(), 0);
        assert_eq!(w.base_cost(), 1, "executing any node takes at least one step");
    }

    #[test]
    fn local_access_constructors() {
        assert_eq!(LocalAccess::read(2, 5), LocalAccess { hops: 2, offset: 5, write: false });
        assert_eq!(LocalAccess::write(0, 1), LocalAccess { hops: 0, offset: 1, write: true });
    }

    #[test]
    fn with_ops_overrides() {
        let w = WorkUnit::empty().with_ops(7);
        assert_eq!(w.ops, 7);
        assert_eq!(w.base_cost(), 7);
    }
}
