//! Nodes of a series-parallel dag.

use crate::access::WorkUnit;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a node within its [`crate::SpDag`] arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The series-parallel structure of a node.
///
/// * `Leaf` — a sequential computation (a single node of the paper's dag, or a coarsened
///   base case). It declares a segment of `seg_words` local-variable words on the execution
///   stack for the duration of its execution.
/// * `Seq` — the sequencing construct: the children execute one after another.
/// * `Par` — the parallel construct: a fork node `fork` spawns `left` and `right` which may
///   execute in parallel; the corresponding join node `join` executes after both complete.
///   The fork declares a segment of `seg_words` words which lives until the join completes
///   (this is the segment σ_v of Section 4; the join writes the children's results into it).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SpStructure {
    /// A sequential leaf computation.
    Leaf {
        /// The work performed.
        work: WorkUnit,
        /// Local-variable segment size (words) declared by this leaf.
        seg_words: u32,
    },
    /// Sequential composition of children (executed left to right).
    Seq {
        /// The children, executed in order.
        children: Vec<NodeId>,
        /// Local-variable segment size (words) declared for the duration of the sequence
        /// (this models a procedure whose local arrays live across several steps, e.g. the
        /// result arrays a Type-2 recursive call passes to its sub-calls).
        seg_words: u32,
    },
    /// Binary fork/join parallel composition.
    Par {
        /// Work performed by the fork (down-pass) node before the children are spawned.
        fork: WorkUnit,
        /// Work performed by the join (up-pass) node after both children complete.
        join: WorkUnit,
        /// First child (executed by the forking processor).
        left: NodeId,
        /// Second child (made available for stealing).
        right: NodeId,
        /// Local-variable segment size (words) declared by the fork and released after the
        /// join.
        seg_words: u32,
    },
}

/// A node of the dag: its structure plus an optional user tag (handy for attributing
/// steals or misses to algorithm-level subproblems in experiments).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpNode {
    /// Series-parallel structure and work of this node.
    pub structure: SpStructure,
    /// Optional user tag.
    pub tag: Option<u32>,
}

impl SpNode {
    /// Create an untagged node.
    pub fn new(structure: SpStructure) -> Self {
        SpNode { structure, tag: None }
    }

    /// The size of the execution-stack segment this node declares (0 for `Seq`).
    pub fn seg_words(&self) -> u32 {
        match &self.structure {
            SpStructure::Leaf { seg_words, .. }
            | SpStructure::Par { seg_words, .. }
            | SpStructure::Seq { seg_words, .. } => *seg_words,
        }
    }

    /// Whether this node declares an execution-stack segment. Leaves and forks always do
    /// (possibly of size zero, which still counts for the `hops` numbering of local
    /// accesses); `Seq` nodes declare one only when their segment size is non-zero.
    pub fn declares_segment(&self) -> bool {
        match &self.structure {
            SpStructure::Leaf { .. } | SpStructure::Par { .. } => true,
            SpStructure::Seq { seg_words, .. } => *seg_words > 0,
        }
    }

    /// Child node ids, in execution order.
    pub fn children(&self) -> Vec<NodeId> {
        match &self.structure {
            SpStructure::Leaf { .. } => Vec::new(),
            SpStructure::Seq { children, .. } => children.clone(),
            SpStructure::Par { left, right, .. } => vec![*left, *right],
        }
    }

    /// Whether this is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self.structure, SpStructure::Leaf { .. })
    }

    /// Whether this is a parallel (fork/join) node.
    pub fn is_par(&self) -> bool {
        matches!(self.structure, SpStructure::Par { .. })
    }

    /// Whether this is a sequencing node.
    pub fn is_seq(&self) -> bool {
        matches!(self.structure, SpStructure::Seq { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_kind_predicates() {
        let leaf = SpNode::new(SpStructure::Leaf { work: WorkUnit::compute(1), seg_words: 2 });
        assert!(leaf.is_leaf() && !leaf.is_par() && !leaf.is_seq());
        assert!(leaf.declares_segment());
        assert_eq!(leaf.seg_words(), 2);
        assert!(leaf.children().is_empty());

        let seq =
            SpNode::new(SpStructure::Seq { children: vec![NodeId(0), NodeId(1)], seg_words: 0 });
        assert!(seq.is_seq());
        assert!(!seq.declares_segment());
        assert_eq!(seq.seg_words(), 0);
        assert_eq!(seq.children(), vec![NodeId(0), NodeId(1)]);

        let par = SpNode::new(SpStructure::Par {
            fork: WorkUnit::empty(),
            join: WorkUnit::empty(),
            left: NodeId(2),
            right: NodeId(3),
            seg_words: 4,
        });
        assert!(par.is_par());
        assert_eq!(par.children(), vec![NodeId(2), NodeId(3)]);
        assert_eq!(par.seg_words(), 4);
    }

    #[test]
    fn node_id_formatting() {
        assert_eq!(format!("{:?}", NodeId(7)), "n7");
        assert_eq!(NodeId(7).index(), 7);
    }
}
