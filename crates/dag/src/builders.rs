//! Higher-level dag construction helpers.
//!
//! The paper's algorithms fork `v(n) >= 2` parallel recursive subproblems; the forking is
//! "incorporated into the binary forking ... by using a fork-join structure identical to that
//! for the tree algorithms" (Section 4.1). [`BalancedTreeBuilder`] builds exactly that
//! balanced binary fork tree over an ordered list of already-built children.

use crate::access::WorkUnit;
use crate::dag::SpDagBuilder;
use crate::node::NodeId;

/// Builds balanced binary fork/join trees over collections of children.
///
/// The per-fork work and segment size can depend on the range of children the fork covers,
/// which lets algorithms implement the paper's *Regular Pattern for BP Global Variable
/// Access* (the i-th node in inorder writes a fixed-size slice of the output).
pub struct BalancedTreeBuilder<'a> {
    builder: &'a mut SpDagBuilder,
    seg_words: u32,
}

impl<'a> BalancedTreeBuilder<'a> {
    /// Create a tree builder that gives every internal fork a `seg_words`-word segment.
    pub fn new(builder: &'a mut SpDagBuilder, seg_words: u32) -> Self {
        BalancedTreeBuilder { builder, seg_words }
    }

    /// Combine `children` (already-built subtrees, in order) under a balanced binary tree of
    /// fork/join nodes. `fork_work(lo, hi)` and `join_work(lo, hi)` provide the work of the
    /// internal node covering children `lo..hi`. Returns the root of the combined tree.
    ///
    /// Panics if `children` is empty.
    pub fn combine<F, J>(&mut self, children: &[NodeId], fork_work: F, join_work: J) -> NodeId
    where
        F: Fn(usize, usize) -> WorkUnit + Copy,
        J: Fn(usize, usize) -> WorkUnit + Copy,
    {
        assert!(!children.is_empty(), "cannot combine an empty list of children");
        self.combine_range(children, 0, children.len(), fork_work, join_work)
    }

    fn combine_range<F, J>(
        &mut self,
        children: &[NodeId],
        lo: usize,
        hi: usize,
        fork_work: F,
        join_work: J,
    ) -> NodeId
    where
        F: Fn(usize, usize) -> WorkUnit + Copy,
        J: Fn(usize, usize) -> WorkUnit + Copy,
    {
        debug_assert!(lo < hi);
        if hi - lo == 1 {
            return children[lo];
        }
        let mid = lo + (hi - lo) / 2;
        let left = self.combine_range(children, lo, mid, fork_work, join_work);
        let right = self.combine_range(children, mid, hi, fork_work, join_work);
        self.builder.par_with_segment(
            fork_work(lo, hi),
            join_work(lo, hi),
            left,
            right,
            self.seg_words,
        )
    }
}

/// Build a simple balanced binary fork tree over `leaves` with trivial fork/join work and
/// per-fork segments of `seg_words` words. Convenience wrapper over [`BalancedTreeBuilder`].
pub fn balanced_par(builder: &mut SpDagBuilder, leaves: &[NodeId], seg_words: u32) -> NodeId {
    BalancedTreeBuilder::new(builder, seg_words).combine(
        leaves,
        |_, _| WorkUnit::compute(1),
        |_, _| WorkUnit::compute(1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::SpDagBuilder;

    #[test]
    fn single_child_is_returned_directly() {
        let mut b = SpDagBuilder::new();
        let l = b.leaf(WorkUnit::compute(1));
        let root = balanced_par(&mut b, &[l], 0);
        assert_eq!(root, l);
        let d = b.build(root).unwrap();
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn power_of_two_children_give_complete_tree() {
        let mut b = SpDagBuilder::new();
        let leaves: Vec<NodeId> = (0..8).map(|_| b.leaf(WorkUnit::compute(1))).collect();
        let root = balanced_par(&mut b, &leaves, 1);
        let d = b.build(root).unwrap();
        assert_eq!(d.leaf_count(), 8);
        assert_eq!(d.fork_count(), 7);
        // Balanced: span in nodes = depth 3 of forks (fork + join each) + 1 leaf = 3*2 + 1.
        assert_eq!(d.span_nodes(), 7);
    }

    #[test]
    fn non_power_of_two_children_still_balanced() {
        let mut b = SpDagBuilder::new();
        let leaves: Vec<NodeId> = (0..5).map(|_| b.leaf(WorkUnit::compute(1))).collect();
        let root = balanced_par(&mut b, &leaves, 0);
        let d = b.build(root).unwrap();
        assert_eq!(d.leaf_count(), 5);
        assert_eq!(d.fork_count(), 4);
        // Depth is ceil(log2(5)) = 3 fork levels on the deepest path.
        assert_eq!(d.span_nodes(), 3 * 2 + 1);
    }

    #[test]
    fn fork_work_sees_ranges() {
        use std::cell::RefCell;
        let ranges: RefCell<Vec<(usize, usize)>> = RefCell::new(Vec::new());
        let mut b = SpDagBuilder::new();
        let leaves: Vec<NodeId> = (0..4).map(|_| b.leaf(WorkUnit::compute(1))).collect();
        let root = BalancedTreeBuilder::new(&mut b, 0).combine(
            &leaves,
            |lo, hi| {
                ranges.borrow_mut().push((lo, hi));
                WorkUnit::compute(1)
            },
            |_, _| WorkUnit::compute(1),
        );
        b.build(root).unwrap();
        let mut seen = ranges.into_inner();
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 2), (0, 4), (2, 4)]);
    }
}
