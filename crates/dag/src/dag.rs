//! The series-parallel dag arena, its builder and its structural analyses (work, span,
//! path costs, validation).

use crate::access::WorkUnit;
use crate::node::{NodeId, SpNode, SpStructure};
use serde::{Deserialize, Serialize};

/// Errors detected while building or validating a dag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DagError {
    /// A node references a child id that does not exist.
    MissingChild {
        /// The referencing parent.
        parent: NodeId,
        /// The dangling child id.
        child: NodeId,
    },
    /// A child id is not smaller than its parent id (children must be created before their
    /// parents, which also guarantees acyclicity).
    ChildAfterParent {
        /// The parent.
        parent: NodeId,
        /// The offending child.
        child: NodeId,
    },
    /// A node is referenced as a child by more than one parent.
    MultipleParents {
        /// The node with several parents.
        child: NodeId,
    },
    /// The designated root is referenced as a child of some node.
    RootHasParent {
        /// The root node.
        root: NodeId,
    },
    /// A node other than the root is not reachable from the root.
    Unreachable {
        /// The unreachable node.
        node: NodeId,
    },
    /// A `Seq` node has fewer than one child.
    EmptySeq {
        /// The empty sequencing node.
        node: NodeId,
    },
    /// A local access targets a segment that does not exist or an offset outside it.
    BadLocalAccess {
        /// The node whose work unit contains the bad access.
        node: NodeId,
        /// Number of ancestor segments requested.
        hops: u16,
        /// Offset requested.
        offset: u32,
    },
    /// The dag has no nodes.
    Empty,
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::MissingChild { parent, child } => {
                write!(f, "node {parent:?} references missing child {child:?}")
            }
            DagError::ChildAfterParent { parent, child } => {
                write!(f, "child {child:?} has an id not smaller than its parent {parent:?}")
            }
            DagError::MultipleParents { child } => {
                write!(f, "node {child:?} has more than one parent")
            }
            DagError::RootHasParent { root } => write!(f, "root {root:?} has a parent"),
            DagError::Unreachable { node } => write!(f, "node {node:?} unreachable from root"),
            DagError::EmptySeq { node } => write!(f, "sequence node {node:?} has no children"),
            DagError::BadLocalAccess { node, hops, offset } => write!(
                f,
                "node {node:?} has a local access (hops {hops}, offset {offset}) outside any segment"
            ),
            DagError::Empty => write!(f, "dag has no nodes"),
        }
    }
}

impl std::error::Error for DagError {}

/// A validated series-parallel dag.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpDag {
    nodes: Vec<SpNode>,
    root: NodeId,
}

/// Builder for [`SpDag`]. Children must be created before their parents.
#[derive(Clone, Debug, Default)]
pub struct SpDagBuilder {
    nodes: Vec<SpNode>,
}

impl SpDagBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        SpDagBuilder::default()
    }

    /// Number of nodes created so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no nodes have been created yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, node: SpNode) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Add a leaf node with no local segment.
    pub fn leaf(&mut self, work: WorkUnit) -> NodeId {
        self.leaf_with_segment(work, 0)
    }

    /// Add a leaf node declaring a `seg_words`-word segment of local variables.
    pub fn leaf_with_segment(&mut self, work: WorkUnit, seg_words: u32) -> NodeId {
        self.push(SpNode::new(SpStructure::Leaf { work, seg_words }))
    }

    /// Add a sequencing node over `children` (executed in order).
    pub fn seq(&mut self, children: Vec<NodeId>) -> NodeId {
        self.seq_with_segment(children, 0)
    }

    /// Add a sequencing node over `children` that declares a `seg_words`-word segment of
    /// local variables living for the whole sequence (e.g. the local result arrays a Type-2
    /// recursive call allocates for its sub-calls).
    pub fn seq_with_segment(&mut self, children: Vec<NodeId>, seg_words: u32) -> NodeId {
        self.push(SpNode::new(SpStructure::Seq { children, seg_words }))
    }

    /// Add a binary fork/join node with no local segment.
    pub fn par(&mut self, fork: WorkUnit, join: WorkUnit, left: NodeId, right: NodeId) -> NodeId {
        self.par_with_segment(fork, join, left, right, 0)
    }

    /// Add a binary fork/join node declaring a `seg_words`-word segment that lives from the
    /// fork until the join completes.
    pub fn par_with_segment(
        &mut self,
        fork: WorkUnit,
        join: WorkUnit,
        left: NodeId,
        right: NodeId,
        seg_words: u32,
    ) -> NodeId {
        self.push(SpNode::new(SpStructure::Par { fork, join, left, right, seg_words }))
    }

    /// Tag the most recently created node (or any node) with a user label.
    pub fn tag(&mut self, node: NodeId, tag: u32) {
        self.nodes[node.index()].tag = Some(tag);
    }

    /// Finish the dag with `root` as its root node, validating the structure.
    pub fn build(self, root: NodeId) -> Result<SpDag, DagError> {
        let dag = SpDag { nodes: self.nodes, root };
        dag.validate()?;
        Ok(dag)
    }
}

impl SpDag {
    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the dag is empty (never true for a validated dag).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node.
    pub fn node(&self, id: NodeId) -> &SpNode {
        &self.nodes[id.index()]
    }

    /// Iterate over `(id, node)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &SpNode)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Validate the structural invariants (tree-shaped series-parallel structure, children
    /// created before parents, local accesses within existing segments).
    pub fn validate(&self) -> Result<(), DagError> {
        if self.nodes.is_empty() {
            return Err(DagError::Empty);
        }
        if self.root.index() >= self.nodes.len() {
            return Err(DagError::MissingChild { parent: self.root, child: self.root });
        }
        let mut parents = vec![0u32; self.nodes.len()];
        for (id, node) in self.iter() {
            if let SpStructure::Seq { children, .. } = &node.structure {
                if children.is_empty() {
                    return Err(DagError::EmptySeq { node: id });
                }
            }
            for child in node.children() {
                if child.index() >= self.nodes.len() {
                    return Err(DagError::MissingChild { parent: id, child });
                }
                if child.index() >= id.index() {
                    return Err(DagError::ChildAfterParent { parent: id, child });
                }
                parents[child.index()] += 1;
                if parents[child.index()] > 1 {
                    return Err(DagError::MultipleParents { child });
                }
            }
        }
        if parents[self.root.index()] != 0 {
            return Err(DagError::RootHasParent { root: self.root });
        }
        // Reachability: every node must be reachable from the root.
        let mut reachable = vec![false; self.nodes.len()];
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            if reachable[id.index()] {
                continue;
            }
            reachable[id.index()] = true;
            stack.extend(self.node(id).children());
        }
        if let Some(i) = reachable.iter().position(|r| !r) {
            return Err(DagError::Unreachable { node: NodeId(i as u32) });
        }
        self.validate_local_accesses()?;
        Ok(())
    }

    fn validate_local_accesses(&self) -> Result<(), DagError> {
        // Walk the tree keeping the stack of segment-declaring ancestors (their sizes).
        fn check_unit(id: NodeId, unit: &WorkUnit, seg_sizes: &[u32]) -> Result<(), DagError> {
            for la in &unit.locals {
                let hops = la.hops as usize;
                if hops >= seg_sizes.len() {
                    return Err(DagError::BadLocalAccess {
                        node: id,
                        hops: la.hops,
                        offset: la.offset,
                    });
                }
                let size = seg_sizes[seg_sizes.len() - 1 - hops];
                if la.offset >= size {
                    return Err(DagError::BadLocalAccess {
                        node: id,
                        hops: la.hops,
                        offset: la.offset,
                    });
                }
            }
            Ok(())
        }
        fn walk(dag: &SpDag, id: NodeId, seg_sizes: &mut Vec<u32>) -> Result<(), DagError> {
            let node = dag.node(id);
            match &node.structure {
                SpStructure::Leaf { work, seg_words } => {
                    seg_sizes.push(*seg_words);
                    check_unit(id, work, seg_sizes)?;
                    seg_sizes.pop();
                }
                SpStructure::Seq { children, seg_words } => {
                    let declares = *seg_words > 0;
                    if declares {
                        seg_sizes.push(*seg_words);
                    }
                    for &c in children {
                        walk(dag, c, seg_sizes)?;
                    }
                    if declares {
                        seg_sizes.pop();
                    }
                }
                SpStructure::Par { fork, join, left, right, seg_words } => {
                    seg_sizes.push(*seg_words);
                    check_unit(id, fork, seg_sizes)?;
                    walk(dag, *left, seg_sizes)?;
                    walk(dag, *right, seg_sizes)?;
                    check_unit(id, join, seg_sizes)?;
                    seg_sizes.pop();
                }
            }
            Ok(())
        }
        walk(self, self.root, &mut Vec::new())
    }

    /// Total work `W`: the sum of base costs of every executed work unit.
    pub fn work(&self) -> u64 {
        self.fold_costs(|w| w.base_cost()).0
    }

    /// Span (critical-path length) measured in unit-time operations.
    pub fn span_ops(&self) -> u64 {
        self.fold_costs(|w| w.base_cost()).1
    }

    /// Span measured in dag *vertices* — the paper's `T∞` (length in vertices of the longest
    /// path descending the dag).
    pub fn span_nodes(&self) -> u64 {
        self.fold_costs(|_| 1).1
    }

    /// `(total, critical-path)` of an arbitrary per-work-unit cost function. Used e.g. with
    /// `|w| w.access_count()` to bound `D_b` (the cache-miss cost along any path).
    pub fn fold_costs<F: Fn(&WorkUnit) -> u64>(&self, cost: F) -> (u64, u64) {
        // Children always have smaller ids, so a single forward pass computes bottom-up values.
        let mut total = vec![0u64; self.nodes.len()];
        let mut path = vec![0u64; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            match &node.structure {
                SpStructure::Leaf { work, .. } => {
                    total[i] = cost(work);
                    path[i] = cost(work);
                }
                SpStructure::Seq { children, .. } => {
                    total[i] = children.iter().map(|c| total[c.index()]).sum();
                    path[i] = children.iter().map(|c| path[c.index()]).sum();
                }
                SpStructure::Par { fork, join, left, right, .. } => {
                    let f = cost(fork);
                    let j = cost(join);
                    total[i] = f + j + total[left.index()] + total[right.index()];
                    path[i] = f + j + path[left.index()].max(path[right.index()]);
                }
            }
        }
        (total[self.root.index()], path[self.root.index()])
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> u64 {
        self.nodes.iter().filter(|n| n.is_leaf()).count() as u64
    }

    /// Number of fork/join (`Par`) nodes.
    pub fn fork_count(&self) -> u64 {
        self.nodes.iter().filter(|n| n.is_par()).count() as u64
    }

    /// Maximum number of memory accesses (global + local) at any single work unit — the
    /// paper's per-node bound `e1` (and, scaled by the miss cost, a bound related to `E`).
    pub fn max_accesses_per_unit(&self) -> u64 {
        let mut max = 0;
        for node in &self.nodes {
            match &node.structure {
                SpStructure::Leaf { work, .. } => max = max.max(work.access_count()),
                SpStructure::Seq { .. } => {}
                SpStructure::Par { fork, join, .. } => {
                    max = max.max(fork.access_count()).max(join.access_count());
                }
            }
        }
        max
    }

    /// Upper bound on the number of memory accesses along any root-to-sink path (a proxy for
    /// the paper's `D_b`, the cache-miss cost along any path, measured in accesses).
    pub fn path_access_bound(&self) -> u64 {
        self.fold_costs(|w: &WorkUnit| w.access_count()).1
    }

    /// Maximum nesting depth of execution-stack segments along any path (bounds the
    /// sequential stack space together with the segment sizes).
    pub fn max_segment_depth(&self) -> u64 {
        fn walk(dag: &SpDag, id: NodeId, depth: u64, max: &mut u64) {
            let node = dag.node(id);
            let d = depth + if node.declares_segment() { 1 } else { 0 };
            *max = (*max).max(d);
            for c in node.children() {
                walk(dag, c, d, max);
            }
        }
        let mut max = 0;
        walk(self, self.root, 0, &mut max);
        max
    }

    /// Peak execution-stack space (in words) of a *sequential* execution: the maximum, over
    /// root-to-leaf paths, of the sum of segment sizes of segment-declaring ancestors.
    pub fn sequential_stack_words(&self) -> u64 {
        fn walk(dag: &SpDag, id: NodeId, space: u64, max: &mut u64) {
            let node = dag.node(id);
            let s = space + node.seg_words() as u64;
            *max = (*max).max(s);
            for c in node.children() {
                walk(dag, c, s, max);
            }
        }
        let mut max = 0;
        walk(self, self.root, 0, &mut max);
        max
    }

    /// The distinct global words read or written anywhere in the dag (the task "size" |τ| of
    /// Definition 2.1, restricted to global variables).
    pub fn global_footprint_words(&self) -> u64 {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        for node in &self.nodes {
            let units: Vec<&WorkUnit> = match &node.structure {
                SpStructure::Leaf { work, .. } => vec![work],
                SpStructure::Seq { .. } => vec![],
                SpStructure::Par { fork, join, .. } => vec![fork, join],
            };
            for u in units {
                for a in &u.global {
                    set.insert(a.addr);
                }
            }
        }
        set.len() as u64
    }

    /// Total number of global-array accesses over the whole dag.
    pub fn total_global_accesses(&self) -> u64 {
        self.fold_costs(|w: &WorkUnit| w.global.len() as u64).0
    }

    /// Total number of local (stack) accesses over the whole dag.
    pub fn total_local_accesses(&self) -> u64 {
        self.fold_costs(|w: &WorkUnit| w.locals.len() as u64).0
    }

    /// Maximum number of times any single global word is written over the whole computation.
    /// A *limited-access* algorithm (Property 4.1) has this bounded by a constant.
    pub fn max_writes_per_global_word(&self) -> u64 {
        use std::collections::HashMap;
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for node in &self.nodes {
            let units: Vec<&WorkUnit> = match &node.structure {
                SpStructure::Leaf { work, .. } => vec![work],
                SpStructure::Seq { .. } => vec![],
                SpStructure::Par { fork, join, .. } => vec![fork, join],
            };
            for u in units {
                for a in &u.global {
                    if a.write {
                        *counts.entry(a.addr.0).or_insert(0) += 1;
                    }
                }
            }
        }
        counts.values().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rws_machine::Addr;

    fn simple_par() -> SpDag {
        let mut b = SpDagBuilder::new();
        let l = b.leaf(WorkUnit::compute(3).read(Addr(0)));
        let r = b.leaf(WorkUnit::compute(5).write(Addr(1)));
        let root = b.par_with_segment(WorkUnit::compute(1), WorkUnit::compute(1), l, r, 2);
        b.build(root).unwrap()
    }

    #[test]
    fn work_and_span_of_simple_par() {
        let d = simple_par();
        assert_eq!(d.work(), 3 + 5 + 1 + 1);
        assert_eq!(d.span_ops(), 1 + 5 + 1);
        assert_eq!(d.span_nodes(), 1 + 1 + 1 + 1 - 1); // fork + max(leaf) + join = 3
        assert_eq!(d.leaf_count(), 2);
        assert_eq!(d.fork_count(), 1);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn seq_adds_spans() {
        let mut b = SpDagBuilder::new();
        let a = b.leaf(WorkUnit::compute(2));
        let c = b.leaf(WorkUnit::compute(3));
        let root = b.seq(vec![a, c]);
        let d = b.build(root).unwrap();
        assert_eq!(d.work(), 5);
        assert_eq!(d.span_ops(), 5);
        assert_eq!(d.span_nodes(), 2);
    }

    #[test]
    fn nested_structure_analysis() {
        // seq( par(l1, l2), l3 )
        let mut b = SpDagBuilder::new();
        let l1 = b.leaf(WorkUnit::compute(4));
        let l2 = b.leaf(WorkUnit::compute(6));
        let p = b.par(WorkUnit::compute(1), WorkUnit::compute(1), l1, l2);
        let l3 = b.leaf(WorkUnit::compute(10));
        let root = b.seq(vec![p, l3]);
        let d = b.build(root).unwrap();
        assert_eq!(d.work(), 4 + 6 + 1 + 1 + 10);
        assert_eq!(d.span_ops(), 1 + 6 + 1 + 10);
    }

    #[test]
    fn validation_rejects_missing_child() {
        let b = SpDagBuilder::new();
        let mut nodes = b;
        let l = nodes.leaf(WorkUnit::empty());
        // Build a Par that references a node id that does not exist.
        let bogus = NodeId(99);
        let root = nodes.par(WorkUnit::empty(), WorkUnit::empty(), l, bogus);
        assert!(matches!(nodes.build(root), Err(DagError::MissingChild { .. })));
    }

    #[test]
    fn validation_rejects_shared_child() {
        let mut b = SpDagBuilder::new();
        let l = b.leaf(WorkUnit::empty());
        let r = b.leaf(WorkUnit::empty());
        let p1 = b.par(WorkUnit::empty(), WorkUnit::empty(), l, r);
        // l used again by a second parent.
        let p2 = b.par(WorkUnit::empty(), WorkUnit::empty(), p1, l);
        assert!(matches!(b.build(p2), Err(DagError::MultipleParents { .. })));
    }

    #[test]
    fn validation_rejects_non_root_orphan() {
        let mut b = SpDagBuilder::new();
        let _orphan = b.leaf(WorkUnit::empty());
        let l = b.leaf(WorkUnit::empty());
        let r = b.leaf(WorkUnit::empty());
        let root = b.par(WorkUnit::empty(), WorkUnit::empty(), l, r);
        assert!(matches!(b.build(root), Err(DagError::Unreachable { .. })));
    }

    #[test]
    fn validation_rejects_root_with_parent() {
        let mut b = SpDagBuilder::new();
        let l = b.leaf(WorkUnit::empty());
        let r = b.leaf(WorkUnit::empty());
        let _root = b.par(WorkUnit::empty(), WorkUnit::empty(), l, r);
        // Declare one of the children as root: it has a parent.
        assert!(matches!(b.build(l), Err(DagError::RootHasParent { .. })));
    }

    #[test]
    fn validation_rejects_empty_seq() {
        let mut b = SpDagBuilder::new();
        let s = b.seq(vec![]);
        assert!(matches!(b.build(s), Err(DagError::EmptySeq { .. })));
    }

    #[test]
    fn validation_rejects_empty_dag() {
        let b = SpDagBuilder::new();
        assert!(matches!(b.build(NodeId(0)), Err(DagError::Empty)));
    }

    #[test]
    fn validation_rejects_bad_local_access() {
        let mut b = SpDagBuilder::new();
        // Leaf declares a 1-word segment but accesses offset 3.
        let l = b.leaf_with_segment(WorkUnit::empty().local_write(0, 3), 1);
        assert!(matches!(b.build(l), Err(DagError::BadLocalAccess { .. })));

        // Access to a non-existent ancestor segment.
        let mut b = SpDagBuilder::new();
        let l = b.leaf_with_segment(WorkUnit::empty().local_write(1, 0), 1);
        assert!(matches!(b.build(l), Err(DagError::BadLocalAccess { .. })));
    }

    #[test]
    fn local_access_to_ancestor_segment_is_ok() {
        let mut b = SpDagBuilder::new();
        let l = b.leaf_with_segment(WorkUnit::empty().local_write(1, 1), 1);
        let r = b.leaf(WorkUnit::empty());
        let root = b.par_with_segment(WorkUnit::empty(), WorkUnit::empty(), l, r, 2);
        assert!(b.build(root).is_ok());
    }

    #[test]
    fn footprint_and_write_counts() {
        let mut b = SpDagBuilder::new();
        let l = b.leaf(WorkUnit::empty().write(Addr(0)).write(Addr(0)).read(Addr(1)));
        let r = b.leaf(WorkUnit::empty().write(Addr(2)));
        let root = b.par(WorkUnit::empty(), WorkUnit::empty(), l, r);
        let d = b.build(root).unwrap();
        assert_eq!(d.global_footprint_words(), 3);
        assert_eq!(d.max_writes_per_global_word(), 2);
        assert_eq!(d.total_global_accesses(), 4);
    }

    #[test]
    fn segment_depth_and_stack_space() {
        let mut b = SpDagBuilder::new();
        let l1 = b.leaf_with_segment(WorkUnit::empty(), 3);
        let l2 = b.leaf(WorkUnit::empty());
        let inner = b.par_with_segment(WorkUnit::empty(), WorkUnit::empty(), l1, l2, 5);
        let l3 = b.leaf(WorkUnit::empty());
        let root = b.par_with_segment(WorkUnit::empty(), WorkUnit::empty(), inner, l3, 7);
        let d = b.build(root).unwrap();
        assert_eq!(d.max_segment_depth(), 3);
        assert_eq!(d.sequential_stack_words(), 7 + 5 + 3);
    }

    #[test]
    fn max_accesses_per_unit() {
        let d = simple_par();
        assert_eq!(d.max_accesses_per_unit(), 1);
        assert_eq!(d.path_access_bound(), 1);
    }

    #[test]
    fn tags_round_trip() {
        let mut b = SpDagBuilder::new();
        let l = b.leaf(WorkUnit::empty());
        b.tag(l, 42);
        let r = b.leaf(WorkUnit::empty());
        let root = b.par(WorkUnit::empty(), WorkUnit::empty(), l, r);
        let d = b.build(root).unwrap();
        assert_eq!(d.node(l).tag, Some(42));
        assert_eq!(d.node(r).tag, None);
    }
}
