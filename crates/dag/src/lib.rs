//! # rws-dag
//!
//! Series-parallel computation dags in the sense of Section 2 of *Analysis of Randomized Work
//! Stealing with False Sharing* (Cole & Ramachandran).
//!
//! A computation is a series-parallel dag whose nodes are constant-size computations. It is
//! built from single nodes by **sequencing** and by the binary **parallel construct**
//! (fork/join); multithreading follows the fork-join structure, so these dags are exactly the
//! computations a randomized work-stealing scheduler executes.
//!
//! This crate provides:
//!
//! * the dag representation ([`SpDag`], [`node::SpStructure`]) with explicit per-node work
//!   and memory accesses — global-array accesses are concrete addresses, local-variable
//!   accesses are symbolic references into the enclosing execution-stack segments and are
//!   resolved by the scheduler (or by the sequential tracer) at run time;
//! * work / span / path-cost analysis ([`SpDag::work`], [`SpDag::span_nodes`], ...);
//! * a sequential execution tracer ([`trace::SequentialTracer`]) used to obtain the paper's
//!   `W` and `Q` (sequential operation count and sequential cache misses);
//! * the algorithm classification metadata of Sections 4 and 6 ([`meta::AlgoClass`]):
//!   Tree / BP algorithms, Hierarchical Tree algorithms and HBP algorithms, together with the
//!   limited-access and space-bound properties.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod builders;
pub mod dag;
pub mod meta;
pub mod node;
pub mod trace;

pub use access::{LocalAccess, WorkUnit};
pub use builders::BalancedTreeBuilder;
pub use dag::{DagError, SpDag, SpDagBuilder};
pub use meta::{AlgoClass, AlgoMeta, Computation, Shrink, SpaceBound};
pub use node::{NodeId, SpNode, SpStructure};
pub use rws_machine::{Access, Addr};
pub use trace::{SequentialCosts, SequentialTracer};
