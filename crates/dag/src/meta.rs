//! Algorithm classification metadata: the algorithm classes and structural properties the
//! paper's analysis depends on (Sections 4 and 6).

use crate::dag::SpDag;
use serde::{Deserialize, Serialize};

/// How fast the recursive subproblem size shrinks — the `s(n)` of Definition 4.5.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Shrink {
    /// `s(n) = n / 2`.
    Half,
    /// `s(n) = n / 4` (the matrix-multiply recursions on input size `n²`).
    Quarter,
    /// `s(n) = sqrt(n)` (the sorting / FFT recursions).
    Sqrt,
    /// `s(n) = n / k` for the given constant `k > 1`.
    ByFactor(f64),
}

impl Shrink {
    /// Apply the shrink function once to a problem of size `n`.
    pub fn apply(&self, n: f64) -> f64 {
        match self {
            Shrink::Half => n / 2.0,
            Shrink::Quarter => n / 4.0,
            Shrink::Sqrt => n.sqrt(),
            Shrink::ByFactor(k) => n / k,
        }
    }

    /// `s*(n, B)`: the number of iterations of the shrink function needed to reduce `n`
    /// below the threshold `target` (used with `target = B` or `target = Sl^{-1}(B)`).
    pub fn iterations_to_reach(&self, mut n: f64, target: f64) -> u32 {
        let mut it = 0;
        while n >= target && n > 1.0 && it < 10_000 {
            n = self.apply(n);
            it += 1;
        }
        it
    }
}

/// The local-space bound `Sl(n)` of Definition 4.6, as a symbolic function of the task size.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum SpaceBound {
    /// `Sl(n) = Θ(1)` (tree-algorithm nodes).
    Constant,
    /// `Sl(n) = Θ(log n)` (a tree-algorithm task's whole stack).
    Logarithmic,
    /// `Sl(n) = Θ(sqrt n)` (padded BP tasks).
    SqrtN,
    /// `Sl(n) = Θ(n)` — the *exactly linear space bounded* case used by all the paper's
    /// recursive algorithms.
    Linear,
}

impl SpaceBound {
    /// Evaluate the bound at size `n` (up to constant factors; the constant is taken as 1).
    pub fn eval(&self, n: f64) -> f64 {
        match self {
            SpaceBound::Constant => 1.0,
            SpaceBound::Logarithmic => n.max(2.0).log2(),
            SpaceBound::SqrtN => n.max(0.0).sqrt(),
            SpaceBound::Linear => n,
        }
    }
}

/// The algorithm classes of Definitions 4.4, 4.5 and Section 6.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum AlgoClass {
    /// Type 0: a sequential computation of constant size.
    Type0,
    /// Type 1: a Tree Algorithm (down-pass + up-pass of a binary forking tree). `bp` records
    /// whether it additionally satisfies the Balanced Parallel (BP) conditions of Section 6
    /// (balanced subtree sizes, regular global-write pattern, local-variable access rule).
    Tree {
        /// Whether the tree is a BP computation.
        bp: bool,
    },
    /// Type `level >= 2`: a Hierarchical Tree Algorithm that calls `collections` successive
    /// collections of parallel recursive subproblems whose sizes shrink by `shrink`. `hbp`
    /// records whether it satisfies the HBP balance conditions of Section 6.
    Hierarchical {
        /// The type level `i >= 2`.
        level: u8,
        /// Whether the algorithm is HBP (balanced recursive forking).
        hbp: bool,
        /// The number `c` of collections of recursive calls.
        collections: u32,
        /// The subproblem shrink function `s(n)`.
        shrink: Shrink,
    },
}

impl AlgoClass {
    /// The paper's `c` (number of collections of recursive calls); 1 for non-recursive
    /// classes.
    pub fn collections(&self) -> u32 {
        match self {
            AlgoClass::Hierarchical { collections, .. } => *collections,
            _ => 1,
        }
    }

    /// Whether the class is in the HBP subclass analyzed in Section 6 (BP trees and HBP
    /// hierarchical algorithms).
    pub fn is_hbp(&self) -> bool {
        match self {
            AlgoClass::Type0 => true,
            AlgoClass::Tree { bp } => *bp,
            AlgoClass::Hierarchical { hbp, .. } => *hbp,
        }
    }
}

/// Structural metadata attached to a built computation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AlgoMeta {
    /// Human-readable algorithm name.
    pub name: String,
    /// Input size `n` the computation was built for.
    pub input_size: u64,
    /// The algorithm class.
    pub class: AlgoClass,
    /// Whether every writable variable is written O(1) times (Property 4.1). Recorded by the
    /// builder; `SpDag::max_writes_per_global_word` can verify it for global variables.
    pub limited_access: bool,
    /// Whether the algorithm is top-dominant (Property 4.2).
    pub top_dominant: bool,
    /// The local space bound `Sl` of the recursive tasks.
    pub local_space: SpaceBound,
    /// Base-case size used when coarsening leaves (1 = no coarsening).
    pub base_case: u64,
}

impl AlgoMeta {
    /// Metadata for a (non-BP) tree algorithm.
    pub fn tree(name: impl Into<String>, input_size: u64) -> Self {
        AlgoMeta {
            name: name.into(),
            input_size,
            class: AlgoClass::Tree { bp: false },
            limited_access: true,
            top_dominant: true,
            local_space: SpaceBound::Constant,
            base_case: 1,
        }
    }

    /// Metadata for a BP computation.
    pub fn bp(name: impl Into<String>, input_size: u64) -> Self {
        AlgoMeta { class: AlgoClass::Tree { bp: true }, ..AlgoMeta::tree(name, input_size) }
    }

    /// Metadata for a Type-2 HBP algorithm with `collections` collections of recursive calls
    /// shrinking by `shrink`.
    pub fn hbp2(
        name: impl Into<String>,
        input_size: u64,
        collections: u32,
        shrink: Shrink,
    ) -> Self {
        AlgoMeta {
            name: name.into(),
            input_size,
            class: AlgoClass::Hierarchical { level: 2, hbp: true, collections, shrink },
            limited_access: true,
            top_dominant: true,
            local_space: SpaceBound::Linear,
            base_case: 1,
        }
    }

    /// Builder-style: set the base-case size.
    pub fn with_base_case(mut self, base: u64) -> Self {
        self.base_case = base;
        self
    }

    /// Builder-style: mark as not limited-access (e.g. the in-place depth-n MM).
    pub fn unlimited_access(mut self) -> Self {
        self.limited_access = false;
        self
    }
}

/// A built computation: the dag plus its classification metadata.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Computation {
    /// The series-parallel dag.
    pub dag: SpDag,
    /// Classification metadata.
    pub meta: AlgoMeta,
}

impl Computation {
    /// Bundle a dag with its metadata.
    pub fn new(dag: SpDag, meta: AlgoMeta) -> Self {
        Computation { dag, meta }
    }

    /// Check that the dag is consistent with the declared metadata, returning a list of
    /// violations (empty if everything checks out). Currently verifies the limited-access
    /// property for global words and that HBP metadata is only claimed for fork-join shapes.
    pub fn check_properties(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.meta.limited_access {
            let max_writes = self.dag.max_writes_per_global_word();
            // "O(1) times" — we allow a small constant; 4 covers all our algorithms
            // (the limited-access MM writes each output word at most twice per level merge).
            if max_writes > 4 {
                problems.push(format!(
                    "declared limited-access but some global word is written {max_writes} times"
                ));
            }
        }
        if self.dag.leaf_count() == 0 {
            problems.push("computation has no leaves".to_string());
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::WorkUnit;
    use crate::dag::SpDagBuilder;
    use rws_machine::Addr;

    #[test]
    fn shrink_functions() {
        assert_eq!(Shrink::Half.apply(16.0), 8.0);
        assert_eq!(Shrink::Quarter.apply(16.0), 4.0);
        assert_eq!(Shrink::Sqrt.apply(16.0), 4.0);
        assert!((Shrink::ByFactor(3.0).apply(9.0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn shrink_iteration_counts() {
        // n=256, target 2: halving takes 7 steps to drop below 2? 256->128->...->2->1: to get < 2
        // we need 8 steps; the loop stops when n < target.
        assert_eq!(Shrink::Half.iterations_to_reach(256.0, 2.0), 8);
        // sqrt: 65536 -> 256 -> 16 -> 4 -> 2 -> 1.41: below 2 after 5 steps.
        assert_eq!(Shrink::Sqrt.iterations_to_reach(65536.0, 2.0), 5);
        // Already below target.
        assert_eq!(Shrink::Quarter.iterations_to_reach(1.0, 8.0), 0);
    }

    #[test]
    fn space_bounds() {
        assert_eq!(SpaceBound::Constant.eval(1000.0), 1.0);
        assert_eq!(SpaceBound::Linear.eval(1000.0), 1000.0);
        assert!((SpaceBound::SqrtN.eval(64.0) - 8.0).abs() < 1e-9);
        assert!((SpaceBound::Logarithmic.eval(1024.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn class_helpers() {
        assert!(AlgoClass::Type0.is_hbp());
        assert!(AlgoClass::Tree { bp: true }.is_hbp());
        assert!(!AlgoClass::Tree { bp: false }.is_hbp());
        let h = AlgoClass::Hierarchical {
            level: 2,
            hbp: true,
            collections: 2,
            shrink: Shrink::Quarter,
        };
        assert!(h.is_hbp());
        assert_eq!(h.collections(), 2);
        assert_eq!(AlgoClass::Type0.collections(), 1);
    }

    #[test]
    fn meta_constructors() {
        let m = AlgoMeta::bp("prefix-sums", 1024);
        assert!(m.class.is_hbp());
        assert!(m.limited_access);
        let m2 = AlgoMeta::hbp2("mm", 64, 2, Shrink::Quarter).with_base_case(8).unlimited_access();
        assert_eq!(m2.base_case, 8);
        assert!(!m2.limited_access);
    }

    #[test]
    fn property_check_flags_unlimited_writes() {
        let mut b = SpDagBuilder::new();
        let mut w = WorkUnit::empty();
        for _ in 0..10 {
            w = w.write(Addr(0));
        }
        let l = b.leaf(w);
        let dag = b.build(l).unwrap();
        let comp = Computation::new(dag, AlgoMeta::tree("bad", 1));
        let problems = comp.check_properties();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("limited-access"));
    }

    #[test]
    fn property_check_ok_for_clean_dag() {
        let mut b = SpDagBuilder::new();
        let l = b.leaf(WorkUnit::empty().write(Addr(0)));
        let r = b.leaf(WorkUnit::empty().write(Addr(1)));
        let root = b.par(WorkUnit::empty(), WorkUnit::empty(), l, r);
        let dag = b.build(root).unwrap();
        let comp = Computation::new(dag, AlgoMeta::bp("ok", 2));
        assert!(comp.check_properties().is_empty());
    }
}
