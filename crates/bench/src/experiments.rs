//! The experiments E1–E20 of DESIGN.md §5: each function measures a quantity on the
//! simulated machine and prints it next to the paper's predicted bound.

use crate::table::{fnum, Table};
use crate::{average_over_seeds, default_machine, params_of, run_on, sequential_costs};
use rws_algos::fft::{fft_computation, FftConfig};
use rws_algos::listrank::{
    connected_components_computation, list_ranking_computation, ConnectedComponentsConfig,
    ListRankConfig,
};
use rws_algos::matmul::{matmul_computation, MatMulConfig, MmVariant};
use rws_algos::prefix::{prefix_sums_computation, PrefixConfig};
use rws_algos::sort::{sort_computation, SortConfig};
use rws_algos::transpose::{bi_to_rm_computation, rm_to_bi_computation, transpose_bi_computation};
use rws_analysis as analysis;
use rws_core::{PotentialTracker, RwsScheduler, SimConfig};
use rws_dag::Computation;
use rws_machine::MachineConfig;

const SEEDS: [u64; 3] = [11, 23, 47];

fn mm(n: usize, base: usize, variant: MmVariant) -> Computation {
    matmul_computation(&MatMulConfig { n, base, variant })
}

/// E1/E2 — Lemma 3.1, Corollaries 3.1/3.2: matrix-multiply cache misses vs the number of
/// steals, for both MM variants.
pub fn e1_e2_mm_cache_misses(quick: bool) {
    let n = if quick { 16 } else { 32 };
    let base = 4;
    let mut table = Table::new(
        format!("E1/E2 — MM cache misses vs steals (Lemma 3.1), n = {n}"),
        &["variant", "p", "steals S", "cache misses", "bound(n,M,B,S)", "measured/bound"],
    );
    for variant in [MmVariant::DepthNLimitedAccess, MmVariant::DepthLog2N] {
        let comp = mm(n, base, variant);
        for p in [1usize, 2, 4, 8] {
            let machine = default_machine(p);
            let report = run_on(&comp, &machine, SEEDS[0]);
            let params = params_of(&machine);
            let bound =
                analysis::mm_cache_misses(n as f64, report.successful_steals as f64, &params);
            table.row(vec![
                format!("{variant:?}"),
                p.to_string(),
                report.successful_steals.to_string(),
                report.cache_misses().to_string(),
                fnum(bound),
                fnum(report.cache_misses() as f64 / bound.max(1.0)),
            ]);
        }
    }
    table.print();
    println!("Shape check: measured/bound should stay O(1) (constant across p) for each variant.");
}

/// E3/E4 — Lemmas 4.3/4.4/4.5: block delay per stack block is O(min(B, ...)) and total block
/// delay is O(S · B).
pub fn e3_e4_block_delay(quick: bool) {
    let n = if quick { 16 } else { 32 };
    let mut table = Table::new(
        "E3/E4 — block delay (Lemmas 4.4/4.5): per-block <= O(B), total <= O(S*B)",
        &["algorithm", "B", "p", "S", "max stack blk xfers", "total blk delay", "S*B"],
    );
    for b_words in [4u64, 8, 16] {
        for (name, comp) in [
            ("mm-limited", mm(n, 4, MmVariant::DepthNLimitedAccess)),
            ("prefix-sums", prefix_sums_computation(&PrefixConfig::new(1024))),
        ] {
            let machine = default_machine(8).with_block_words(b_words);
            let report = run_on(&comp, &machine, SEEDS[1]);
            table.row(vec![
                name.to_string(),
                b_words.to_string(),
                "8".to_string(),
                report.successful_steals.to_string(),
                report.max_stack_block_transfers.to_string(),
                report.block_delay().to_string(),
                (report.successful_steals * b_words).to_string(),
            ]);
        }
    }
    table.print();
    println!("Shape check: per-block transfers grow with B but stay bounded; total block delay stays below a small multiple of S*B.");
}

/// E5/E6 — Lemmas 4.6/4.7: layout-conversion cache misses and block delay.
pub fn e5_e6_conversions(quick: bool) {
    let n = if quick { 16 } else { 32 };
    let mut table = Table::new(
        format!("E5/E6 — RM<->BI conversions (Lemmas 4.6/4.7), n = {n}"),
        &["conversion", "p", "S", "cache misses", "bound", "block delay", "S*B"],
    );
    for p in [2usize, 8] {
        let machine = default_machine(p);
        let params = params_of(&machine);
        let fast = rm_to_bi_computation(n, 4);
        let r = run_on(&fast, &machine, SEEDS[0]);
        table.row(vec![
            "rm->bi (tree)".into(),
            p.to_string(),
            r.successful_steals.to_string(),
            r.cache_misses().to_string(),
            fnum(analysis::rm_to_bi_cache_misses(n as f64, r.successful_steals as f64, &params)),
            r.block_delay().to_string(),
            (r.successful_steals * machine.block_words).to_string(),
        ]);
        let slow = bi_to_rm_computation(n, 4);
        let r = run_on(&slow, &machine, SEEDS[0]);
        table.row(vec![
            "bi->rm (log^2)".into(),
            p.to_string(),
            r.successful_steals.to_string(),
            r.cache_misses().to_string(),
            fnum(analysis::bi_to_rm_cache_misses(n as f64, r.successful_steals as f64, &params)),
            r.block_delay().to_string(),
            (r.successful_steals * machine.block_words).to_string(),
        ]);
    }
    table.print();
}

/// E7 — Lemmas 5.1/5.2: the potential function essentially never increases and drops across
/// steal activity.
pub fn e7_potential(quick: bool) {
    let n = if quick { 1024 } else { 4096 };
    let comp = prefix_sums_computation(&PrefixConfig::new(n));
    let machine = default_machine(8);
    let report =
        RwsScheduler::new(machine, SimConfig::with_seed(SEEDS[2]).with_potential_tracking())
            .run(&comp);
    let mut tracker = PotentialTracker::new();
    for s in &report.potential_trace {
        tracker.record(*s);
    }
    let first = report.potential_trace.first().map(|s| s.log2_phi).unwrap_or(0.0);
    let last = report.potential_trace.last().map(|s| s.log2_phi).unwrap_or(0.0);
    let mut table = Table::new(
        "E7 — potential function (Lemmas 5.1/5.2)",
        &["samples", "log2 phi start", "log2 phi end", "non-increasing fraction"],
    );
    table.row(vec![
        report.potential_trace.len().to_string(),
        fnum(first),
        fnum(last),
        fnum(tracker.non_increasing_fraction()),
    ]);
    table.print();
    println!("Shape check: phi decreases monotonically (fraction close to 1.0) from ~h(t) to ~0.");
}

/// E8/E9 — Theorems 5.1 and 6.1/6.2: measured steals vs the general bound and the improved
/// BP bound, as the block size grows.
pub fn e8_e9_steal_bounds(quick: bool) {
    let n = if quick { 2048 } else { 8192 };
    let mut table = Table::new(
        format!("E8/E9 — steals vs bounds for prefix sums (BP), n = {n}"),
        &["B", "p", "measured S", "general bound (Thm 5.1)", "BP bound (Thm 6.2)", "S/BP bound"],
    );
    for b_words in [4u64, 8, 16, 32] {
        let comp = prefix_sums_computation(&PrefixConfig::new(n));
        for p in [4usize, 8] {
            let machine = default_machine(p).with_block_words(b_words).with_cache_words(4096);
            let params = params_of(&machine);
            let s = average_over_seeds(&comp, &machine, &SEEDS, |r| r.successful_steals as f64);
            let t_inf = comp.dag.span_nodes() as f64;
            let general = analysis::steal_bound_general(t_inf, b_words as f64, 1.0, &params);
            let bp =
                analysis::steal_bound_hbp(analysis::h_root_bp(n as f64, &params), 1.0, &params);
            table.row(vec![
                b_words.to_string(),
                p.to_string(),
                fnum(s),
                fnum(general),
                fnum(bp),
                fnum(s / bp.max(1.0)),
            ]);
        }
    }
    table.print();
    println!("Shape check: measured steals stay within a constant factor of the BP bound, which grows like B + log n, far below the general bound's B*log n growth.");
}

/// E10 — Theorem 6.3: the three h(t) formulas for c = 1, c = 2 & s(n) = sqrt(n), c = 2 &
/// s(n) = n/4 (pure formula comparison across n and B).
pub fn e10_h_formulas(_quick: bool) {
    let mut table = Table::new(
        "E10 — Theorem 6.3 h(t) formulas",
        &["n", "B", "c=1 (sort-like)", "c=2 sqrt (FFT)", "c=2 quarter (MM)"],
    );
    for n in [1u64 << 10, 1 << 14, 1 << 18] {
        for b_words in [8u64, 64] {
            let machine = MachineConfig::small().with_block_words(b_words);
            let params = params_of(&machine);
            let t_inf = (n as f64).log2().powi(2);
            let s_star = ((n as f64).log2() - (b_words as f64).log2()).max(1.0);
            table.row(vec![
                n.to_string(),
                b_words.to_string(),
                fnum(analysis::h_root_hbp_c1(t_inf, n as f64, s_star, &params)),
                fnum(analysis::h_root_hbp_c2_sqrt(t_inf, n as f64, &params)),
                fnum(analysis::h_root_hbp_c2_quarter(t_inf, n as f64, &params)),
            ]);
        }
    }
    table.print();
    println!("Shape check: the sqrt-shrink recursion has the smallest additive term, the quarter-shrink (depth-n MM) the largest, and the gap widens with n.");
}

/// E11/E12 — Lemma 7.1: steal counts of the two MM algorithms (the depth-log²n variant
/// steals far less) and the resulting speedups.
pub fn e11_e12_mm_steals_speedup(quick: bool) {
    let n = if quick { 16 } else { 32 };
    let base = 4;
    let mut table = Table::new(
        format!("E11/E12 — MM steals and speedup (Lemma 7.1), n = {n}"),
        &["variant", "p", "S", "predicted S", "makespan", "speedup", "block delay/S"],
    );
    for variant in [MmVariant::DepthNLimitedAccess, MmVariant::DepthLog2N] {
        let comp = mm(n, base, variant);
        let seq = sequential_costs(&comp, &default_machine(1));
        for p in [2usize, 4, 8] {
            let machine = default_machine(p);
            let params = params_of(&machine);
            let report = run_on(&comp, &machine, SEEDS[0]);
            let predicted = match variant {
                MmVariant::DepthNLimitedAccess => {
                    analysis::mm_depth_n_steals(n as f64, 1.0, &params)
                }
                _ => analysis::mm_depth_log2_steals(n as f64, 1.0, &params),
            };
            table.row(vec![
                format!("{variant:?}"),
                p.to_string(),
                report.successful_steals.to_string(),
                fnum(predicted),
                report.makespan.to_string(),
                fnum(report.speedup(seq.time)),
                fnum(report.block_delay_per_steal()),
            ]);
        }
    }
    table.print();
    println!("Shape check: the depth-log²n variant steals far less than the depth-n variant at the same p; speedups grow with p inside the optimality region; block delay per steal stays O(B).");
}

/// E13–E17 — Theorem 7.1 and Section 7: the whole algorithm suite, measured steals vs the
/// per-algorithm predictions, plus the O(S·B) block-delay envelope.
pub fn e13_e17_algorithm_suite(quick: bool) {
    let scale = if quick { 1usize } else { 2 };
    let machine = default_machine(8);
    let params = params_of(&machine);
    let entries: Vec<(&str, Computation, f64)> = vec![
        (
            "prefix-sums (i)",
            prefix_sums_computation(&PrefixConfig::new(2048 * scale)),
            analysis::bp_steals((2048 * scale) as f64, 1.0, &params),
        ),
        (
            "transpose (ii)",
            transpose_bi_computation(32 * scale, 4),
            analysis::transpose_steals((32 * scale) as f64, 1.0, &params),
        ),
        (
            "rm->bi (ii)",
            rm_to_bi_computation(32 * scale, 4),
            analysis::transpose_steals((32 * scale) as f64, 1.0, &params),
        ),
        (
            "hbp-mergesort (iii)",
            sort_computation(&SortConfig::new(1024 * scale)),
            analysis::mergesort_steals((1024 * scale) as f64, 1.0, &params),
        ),
        (
            "fft (iv)",
            fft_computation(&FftConfig::new(1024 * scale)),
            analysis::sort_fft_steals((1024 * scale) as f64, 1.0, &params),
        ),
        (
            "list-ranking",
            list_ranking_computation(&ListRankConfig::new(512 * scale)),
            analysis::list_ranking_steals((512 * scale) as f64, 1.0, &params),
        ),
        (
            "connected-components",
            connected_components_computation(&ConnectedComponentsConfig::new(256 * scale)),
            analysis::connected_components_steals((256 * scale) as f64, 1.0, &params),
        ),
    ];
    let mut table = Table::new(
        "E13–E17 — algorithm suite under RWS (Theorem 7.1), p = 8",
        &["algorithm", "W", "T_inf", "S", "predicted S", "S/pred", "block delay", "S*B"],
    );
    for (name, comp, predicted) in entries {
        let report = run_on(&comp, &machine, SEEDS[2]);
        table.row(vec![
            name.to_string(),
            comp.dag.work().to_string(),
            comp.dag.span_nodes().to_string(),
            report.successful_steals.to_string(),
            fnum(predicted),
            fnum(report.successful_steals as f64 / predicted.max(1.0)),
            report.block_delay().to_string(),
            (report.successful_steals * machine.block_words).to_string(),
        ]);
    }
    table.print();
    println!("Shape check: measured steals stay below the predicted bounds (ratios O(1) and < 1 with the constants elided); block delay stays within a small multiple of S*B for every algorithm.");
}

/// E18 — Observation 4.1 / Figure 1: the steals suffered by any single task are right
/// children along one root-to-leaf path, taken in top-down order.
pub fn e18_steal_structure(quick: bool) {
    let n = if quick { 1024 } else { 4096 };
    let comp = prefix_sums_computation(&PrefixConfig::new(n));
    let machine = default_machine(8);
    let report =
        RwsScheduler::new(machine, SimConfig::with_seed(SEEDS[0]).with_steal_events()).run(&comp);
    // Group steal events by victim task: within one victim, steal times must be increasing
    // and the stolen fork nodes must have strictly increasing dag depth (top-down order).
    let depth = node_depths(&comp);
    let mut by_victim: std::collections::HashMap<u32, Vec<(u64, u32)>> = Default::default();
    for ev in &report.steal_events {
        by_victim
            .entry(ev.victim.0 as u32)
            .or_default()
            .push((ev.time, depth[ev.par_node.index()]));
    }
    let mut ordered_pairs = 0u64;
    let mut total_pairs = 0u64;
    for events in by_victim.values() {
        for w in events.windows(2) {
            total_pairs += 1;
            if w[1].1 >= w[0].1 {
                ordered_pairs += 1;
            }
        }
    }
    let mut table = Table::new(
        "E18 — steal structure along P_tau (Observation 4.1 / Figure 1)",
        &["steal events", "victim groups", "top-down ordered pairs", "total pairs"],
    );
    table.row(vec![
        report.steal_events.len().to_string(),
        by_victim.len().to_string(),
        ordered_pairs.to_string(),
        total_pairs.to_string(),
    ]);
    table.print();
    println!("Shape check: consecutive steals from the same victim overwhelmingly move down the tree (ordered pairs ~= total pairs).");
}

fn node_depths(comp: &Computation) -> Vec<u32> {
    let mut depth = vec![0u32; comp.dag.len()];
    // Children have smaller ids; walk from the root assigning depths.
    let mut stack = vec![(comp.dag.root(), 0u32)];
    while let Some((id, d)) = stack.pop() {
        depth[id.index()] = d;
        for c in comp.dag.node(id).children() {
            stack.push((c, d + 1));
        }
    }
    depth
}

/// E19 — the motivating native experiment: padded vs unpadded per-worker accumulators on the
/// real work-stealing pool (false sharing on actual hardware).
pub fn e19_native_false_sharing(quick: bool) {
    use rws_runtime::padding::Counters;
    use rws_runtime::{PaddedCounters, ThreadPool, UnpaddedCounters};
    use std::sync::Arc;
    use std::time::Instant;

    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8);
    let iters: u64 = if quick { 2_000_000 } else { 10_000_000 };
    let run = |counters: Arc<dyn Counters>| -> f64 {
        let pool = ThreadPool::new(threads);
        let start = Instant::now();
        let mut handles = Vec::new();
        for w in 0..threads {
            let c = Arc::clone(&counters);
            let (tx, rx) = std::sync::mpsc::channel::<()>();
            pool.spawn(move || {
                for _ in 0..iters {
                    c.add(w, 1);
                }
                let _ = tx.send(());
            });
            handles.push(rx);
        }
        for rx in handles {
            let _ = rx.recv();
        }
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(counters.total(), iters * threads as u64);
        elapsed
    };
    let unpadded = run(Arc::new(UnpaddedCounters::new(threads)));
    let padded = run(Arc::new(PaddedCounters::new(threads)));
    let mut table = Table::new(
        format!("E19 — native false sharing, {threads} threads x {iters} increments"),
        &["layout", "seconds", "slowdown vs padded"],
    );
    table.row(vec!["padded (no false sharing)".into(), fnum(padded), fnum(1.0)]);
    table.row(vec![
        "unpadded (false sharing)".into(),
        fnum(unpadded),
        fnum(unpadded / padded.max(1e-9)),
    ]);
    table.print();
    println!("Shape check: the unpadded layout is slower (typically several times) — the real-hardware cost the paper's block-miss model accounts for.");
}

/// E20 — Section 3 "Space Usage": peak simulated stack space of the three MM variants.
pub fn e20_space(quick: bool) {
    let n = if quick { 16 } else { 32 };
    let mut table = Table::new(
        format!("E20 — MM space usage (Section 3), n = {n}"),
        &["variant", "p", "peak stack words", "predicted shape"],
    );
    for variant in [MmVariant::DepthNInPlace, MmVariant::DepthNLimitedAccess, MmVariant::DepthLog2N]
    {
        let comp = mm(n, 4, variant);
        for p in [1usize, 8] {
            let machine = default_machine(p);
            let params = params_of(&machine);
            let report = run_on(&comp, &machine, SEEDS[1]);
            let predicted = analysis::mm_space_words(
                n as f64,
                variant != MmVariant::DepthNInPlace,
                variant == MmVariant::DepthLog2N,
                &params,
            );
            table.row(vec![
                format!("{variant:?}"),
                p.to_string(),
                report.peak_stack_words.to_string(),
                fnum(predicted),
            ]);
        }
    }
    table.print();
    println!("Shape check: in-place uses the least auxiliary space, the limited-access depth-n variant more (grows mildly with p), the depth-log²n variant the most.");
}

/// Run the experiment named `name` (`e1`..`e20`, `all`, or `quick`).
pub fn run(name: &str, quick: bool) {
    match name {
        "e1" | "e2" | "e1_e2" => e1_e2_mm_cache_misses(quick),
        "e3" | "e4" | "e3_e4" => e3_e4_block_delay(quick),
        "e5" | "e6" | "e5_e6" => e5_e6_conversions(quick),
        "e7" => e7_potential(quick),
        "e8" | "e9" | "e8_e9" => e8_e9_steal_bounds(quick),
        "e10" => e10_h_formulas(quick),
        "e11" | "e12" | "e11_e12" => e11_e12_mm_steals_speedup(quick),
        "e13" | "e14" | "e15" | "e16" | "e17" | "e13_e17" => e13_e17_algorithm_suite(quick),
        "e18" => e18_steal_structure(quick),
        "e19" => e19_native_false_sharing(quick),
        "e20" => e20_space(quick),
        "all" | "quick" => {
            let q = quick || name == "quick";
            e1_e2_mm_cache_misses(q);
            e3_e4_block_delay(q);
            e5_e6_conversions(q);
            e7_potential(q);
            e8_e9_steal_bounds(q);
            e10_h_formulas(q);
            e11_e12_mm_steals_speedup(q);
            e13_e17_algorithm_suite(q);
            e18_steal_structure(q);
            e19_native_false_sharing(q);
            e20_space(q);
        }
        other => {
            eprintln!("unknown experiment '{other}'; expected e1..e20, all, or quick");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_formula_experiment_runs() {
        // The cheapest experiment (pure formulas) must run without panicking.
        e10_h_formulas(true);
    }

    #[test]
    fn node_depths_cover_the_dag() {
        let comp = prefix_sums_computation(&PrefixConfig::new(64));
        let depths = node_depths(&comp);
        assert_eq!(depths.len(), comp.dag.len());
        assert_eq!(depths[comp.dag.root().index()], 0);
        assert!(depths.iter().any(|&d| d > 0));
    }
}
