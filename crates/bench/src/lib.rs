//! # rws-bench
//!
//! The experiment harness regenerating every quantitative claim of the paper (the experiment
//! index lives in DESIGN.md §5 and the measured results in EXPERIMENTS.md). The
//! `experiments` binary runs one experiment (`e1` … `e20`), a named group, or `all`.
//!
//! Every experiment follows the same pattern: build a computation with `rws-algos`, run it
//! under the `rws-core` scheduler across a parameter sweep, and print measured quantities
//! side by side with the bound predicted by `rws-analysis`. Because the paper is a theory
//! paper with no measured tables, the comparison is about *shape* — scaling exponents, who
//! wins, where crossovers fall — not absolute constants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod native_bench;
pub mod table;

pub use table::Table;

use rws_core::SimConfig;
use rws_dag::{Computation, SequentialTracer};
use rws_exec::{ExecReport, SimExecutor};
use rws_machine::MachineConfig;

/// The simulated executor the experiments sweep with: the given machine, seeded.
pub fn sim_executor(machine: &MachineConfig, seed: u64) -> SimExecutor {
    SimExecutor::new(machine.clone(), SimConfig::with_seed(seed))
}

/// Run `comp` on a `procs`-processor machine with the given seed and return the report.
///
/// Routed through the [`SimExecutor`] backend of `rws-exec`; the full simulator report is
/// unwrapped from the normalized [`ExecReport`] for the experiments that need the paper's
/// detailed counts.
pub fn run_on(comp: &Computation, machine: &MachineConfig, seed: u64) -> rws_core::RunReport {
    run_exec(comp, machine, seed).sim.expect("the simulated backend preserves its RunReport")
}

/// Run `comp` under the simulated backend and return the normalized cross-backend report.
pub fn run_exec(comp: &Computation, machine: &MachineConfig, seed: u64) -> ExecReport {
    sim_executor(machine, seed).run_computation(comp)
}

/// Run `comp` sequentially (one processor) and return its sequential costs (`W`, `Q`).
pub fn sequential_costs(comp: &Computation, machine: &MachineConfig) -> rws_dag::SequentialCosts {
    SequentialTracer::new(machine).run(&comp.dag)
}

/// Average a measurement over `seeds` scheduler runs.
pub fn average_over_seeds<F: Fn(&rws_core::RunReport) -> f64>(
    comp: &Computation,
    machine: &MachineConfig,
    seeds: &[u64],
    f: F,
) -> f64 {
    let total: f64 = seeds.iter().map(|&s| f(&run_on(comp, machine, s))).sum();
    total / seeds.len() as f64
}

/// The default machine used by the experiments (`M = 4096`, `B = 8`, `b = 4`, `s = 8`).
pub fn default_machine(procs: usize) -> MachineConfig {
    MachineConfig::small().with_procs(procs)
}

/// Convert a machine config into the parameter struct the analysis crate uses.
pub fn params_of(machine: &MachineConfig) -> rws_analysis::Params {
    rws_analysis::Params::new(
        machine.procs,
        machine.cache_words,
        machine.block_words,
        machine.miss_cost,
        machine.steal_cost,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rws_algos::prefix::{prefix_sums_computation, PrefixConfig};

    #[test]
    fn helpers_run_a_small_computation() {
        let comp = prefix_sums_computation(&PrefixConfig::new(256));
        let machine = default_machine(4);
        let report = run_on(&comp, &machine, 1);
        assert_eq!(report.work_executed, comp.dag.work());
        let norm = run_exec(&comp, &machine, 1);
        assert_eq!(norm.steals, report.successful_steals);
        assert_eq!(norm.time_units, report.makespan);
        assert_eq!(norm.procs, 4);
        let seq = sequential_costs(&comp, &machine);
        assert!(seq.cache_misses > 0);
        let avg = average_over_seeds(&comp, &machine, &[1, 2, 3], |r| r.successful_steals as f64);
        assert!(avg >= 0.0);
        let p = params_of(&machine);
        assert_eq!(p.p, 4.0);
    }
}
