//! Emit `BENCH_native.json`: the native hot-path benchmark comparing the lock-free
//! Chase–Lev deque backend against the mutex-protected `SimpleDeque` across workloads and
//! thread counts, plus the service-mode rows (job-server throughput, shed rate, and p99
//! queue latency — see `run_service_suite`), the flight-recorder overhead row
//! (`run_trace_overhead`: the same workload with tracing off and on, so the gate can prove
//! the always-compiled recorder stays free when it is off), and the multi-process
//! `sharded` rows (`run_sharded_suite`: shardable workloads across worker subprocesses vs
//! in-process — needs the `shard-worker` binary, so build `rws-shard` first).
//!
//! ```text
//! native_bench [--size smoke|full] [--out PATH] [--threads 1,2,4] [--repeats N]
//!              [--warmup N] [--check-against BASELINE.json]
//!              [--gate BASELINE.json] [--delta-out PATH] [--tolerance F]
//!              [--replay RUN.json] [--append-trajectory PATH] [--note STR]
//! ```
//!
//! The process installs a counting global allocator so the suite can report
//! allocations-per-fork (the "is `join` really allocation-free" trajectory number). After
//! writing, the document is re-read and structurally validated; any problem — malformed
//! JSON, a panicking backend — exits nonzero, which is what the CI smoke step checks.
//!
//! `--check-against BASELINE.json` additionally diffs the freshly written document's
//! *structure* against a committed baseline (every baseline record field present, every
//! workload/backend combination present, uniform per-combination row counts), so a
//! silently dropped workload row fails the build instead of shrinking the file unnoticed.
//! The diff is forward-compatible: a run from a newer binary may carry extra sections and
//! fields, but anything the baseline promises must still be there.
//!
//! `--gate BASELINE.json` runs the perf-regression gate: the run document is compared to
//! the baseline under the `GateConfig` tolerances (`--tolerance` overrides the t=1 wall
//! tolerance), the `rws-bench-delta/v1` delta document is written to `--delta-out`
//! (default `BENCH_delta.json`), and any regression exits nonzero. `--replay RUN.json`
//! gates a previously written run document instead of benchmarking again — CI uses it to
//! prove the gate trips on a doctored run without re-measuring.
//!
//! `--append-trajectory PATH` appends a one-row summary of the run (t=1 chaselev medians,
//! stamped with today's UTC date and `--note`) to the `rws-bench-trajectory/v1` history,
//! creating the file on first use.

use rws_bench::native_bench::{
    append_trajectory, check_against, gate_against, run_service_suite, run_sharded_suite,
    run_suite, run_trace_overhead, to_json_full, trajectory_row, validate_json, BenchConfig,
    GateConfig, SizeClass,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};

// NOTE: duplicated in crates/runtime/tests/alloc_free_join.rs — a #[global_allocator] must
// be declared in each binary crate root, so only the wrapper could be shared, at the cost
// of a public test-support surface on rws-runtime. Keep the two copies in sync.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn usage() -> ! {
    eprintln!(
        "usage: native_bench [--size smoke|full] [--out PATH] [--threads 1,2,4] [--repeats N] \
         [--warmup N] [--check-against BASELINE.json] [--gate BASELINE.json] \
         [--delta-out PATH] [--tolerance F] [--replay RUN.json] \
         [--append-trajectory PATH] [--note STR]"
    );
    std::process::exit(2);
}

/// Today's UTC date as `YYYY-MM-DD`, from the system clock (civil-from-days conversion; no
/// date dependency in the tree).
fn utc_today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = secs as i64 / 86_400 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() -> ExitCode {
    let mut size = SizeClass::Full;
    let mut out = String::from("BENCH_native.json");
    let mut threads: Option<Vec<usize>> = None;
    let mut repeats: Option<usize> = None;
    let mut warmup: Option<usize> = None;
    let mut baseline: Option<String> = None;
    let mut gate_baseline: Option<String> = None;
    let mut delta_out = String::from("BENCH_delta.json");
    let mut tolerance: Option<f64> = None;
    let mut replay: Option<String> = None;
    let mut trajectory: Option<String> = None;
    let mut note = String::new();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--size" => {
                size = it.next().and_then(|s| SizeClass::parse(s)).unwrap_or_else(|| usage())
            }
            "--out" => out = it.next().cloned().unwrap_or_else(|| usage()),
            "--threads" => {
                let list = it.next().unwrap_or_else(|| usage());
                let parsed: Result<Vec<usize>, _> =
                    list.split(',').map(|t| t.trim().parse::<usize>()).collect();
                threads = Some(parsed.unwrap_or_else(|_| usage()));
            }
            "--repeats" => {
                repeats = Some(
                    it.next()
                        .and_then(|r| r.parse().ok())
                        .filter(|&r| r > 0)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--warmup" => {
                warmup = Some(it.next().and_then(|r| r.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--check-against" => baseline = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--gate" => gate_baseline = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--delta-out" => delta_out = it.next().cloned().unwrap_or_else(|| usage()),
            "--tolerance" => {
                tolerance = Some(
                    it.next()
                        .and_then(|t| t.parse().ok())
                        .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--replay" => replay = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--append-trajectory" => {
                trajectory = Some(it.next().cloned().unwrap_or_else(|| usage()))
            }
            "--note" => note = it.next().cloned().unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }

    let mut cfg = BenchConfig::for_size(size);
    if let Some(t) = threads {
        cfg.threads = t;
    }
    if let Some(r) = repeats {
        cfg.repeats = r;
    }
    if let Some(w) = warmup {
        cfg.warmup = w;
    }

    // The document under inspection: a fresh run (written to --out), or a replayed one.
    let written = if let Some(replay_path) = &replay {
        match std::fs::read_to_string(replay_path) {
            Ok(doc) => {
                eprintln!("native_bench: replaying {replay_path} (no benchmarks run)");
                doc
            }
            Err(e) => {
                eprintln!("native_bench: cannot read replay document {replay_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        eprintln!(
            "native_bench: size={} threads={:?} repeats={} warmup={} -> {}",
            cfg.size.name(),
            cfg.threads,
            cfg.repeats,
            cfg.warmup,
            out
        );
        let records = run_suite(&cfg, || ALLOCATIONS.load(Ordering::Relaxed));
        for r in &records {
            eprintln!(
                "  {:>13} {:>8} t={}  median {:>12} ns  steals {:>6} ({:>5} batches)  \
                 jobs {:>8}  retries {:>5}  parks {:>4}  allocs/fork {:.4}",
                r.workload,
                r.backend,
                r.threads,
                r.wall_ns_median,
                r.steals,
                r.batch_steals,
                r.jobs,
                r.steal_retries,
                r.parks,
                r.allocs_per_fork
            );
        }
        let service = run_service_suite(&cfg);
        for r in &service {
            eprintln!(
                "  {:>16} {:>6} t={}  median {:>12} ns  {:>9.0} jobs/s  shed {:>4} \
                 (rate {:.3})  p99 queue {:>9} ns",
                r.scenario,
                r.admission,
                r.threads,
                r.wall_ns_median,
                r.jobs_per_sec,
                r.shed,
                r.shed_rate,
                r.p99_queue_ns
            );
        }
        let trace = run_trace_overhead(&cfg);
        eprintln!(
            "  trace-overhead {} t={}  off {:>12} ns  on {:>12} ns  ({:+.1}%)  \
             {} events recorded",
            trace.workload,
            trace.threads,
            trace.wall_ns_off_median,
            trace.wall_ns_on_median,
            100.0 * trace.overhead_rel,
            trace.events_recorded
        );
        // The multi-process rows: shardable workloads across worker subprocesses vs the
        // same kernels in-process. Needs the shard-worker binary next to this one (CI
        // builds rws-shard first); when it is absent, say how to fix it rather than
        // emitting a document missing a section the baseline promises.
        let sharded = run_sharded_suite(&cfg);
        for r in &sharded {
            eprintln!(
                "  sharded {:>8} s={} t={}  median {:>12} ns  in-process {:>12} ns  \
                 ({:+.1}%)  {} parts  jobs {:>8}",
                r.workload,
                r.shards,
                r.threads_per_shard,
                r.wall_ns_median,
                r.inproc_wall_ns_median,
                100.0 * r.overhead_rel,
                r.parts,
                r.work_items
            );
        }
        let doc = to_json_full(&cfg, &records, &service, Some(&trace), &sharded);
        if let Err(e) = std::fs::write(&out, &doc) {
            eprintln!("native_bench: failed to write {out}: {e}");
            return ExitCode::FAILURE;
        }
        // Validate what actually landed on disk, not the in-memory string.
        match std::fs::read_to_string(&out) {
            Ok(w) => {
                eprintln!("native_bench: wrote {out} ({} records)", records.len());
                w
            }
            Err(e) => {
                eprintln!("native_bench: failed to re-read {out}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    if let Err(e) = validate_json(&written) {
        eprintln!("native_bench: run document is malformed: {e}");
        return ExitCode::FAILURE;
    }

    if let Some(baseline_path) = &baseline {
        let baseline_doc = match std::fs::read_to_string(baseline_path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("native_bench: cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = check_against(&written, &baseline_doc) {
            eprintln!("native_bench: run does not match the {baseline_path} schema: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("native_bench: run structurally matches {baseline_path}");
    }

    if let Some(trajectory_path) = &trajectory {
        let existing = std::fs::read_to_string(trajectory_path).ok();
        let appended = trajectory_row(&written, &utc_today(), &note)
            .and_then(|row| append_trajectory(existing.as_deref(), row));
        match appended {
            Ok(doc) => {
                if let Err(e) = std::fs::write(trajectory_path, &doc) {
                    eprintln!("native_bench: failed to write {trajectory_path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("native_bench: appended a trajectory row to {trajectory_path}");
            }
            Err(e) => {
                eprintln!("native_bench: trajectory append failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(gate_path) = &gate_baseline {
        let baseline_doc = match std::fs::read_to_string(gate_path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("native_bench: cannot read gate baseline {gate_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut gate = GateConfig::default();
        if let Some(t) = tolerance {
            gate.wall_rel_tol = t;
        }
        match gate_against(&written, &baseline_doc, &gate) {
            Ok((delta, pass)) => {
                if let Err(e) = std::fs::write(&delta_out, &delta) {
                    eprintln!("native_bench: failed to write {delta_out}: {e}");
                    return ExitCode::FAILURE;
                }
                if pass {
                    eprintln!("native_bench: gate PASS vs {gate_path} (delta: {delta_out})");
                } else {
                    eprintln!("native_bench: gate FAIL vs {gate_path} (delta: {delta_out}):");
                    if let Ok(parsed) = rws_lab::json::parse(&delta) {
                        for r in parsed.get("regressions").and_then(|r| r.as_array()).unwrap_or(&[])
                        {
                            if let Some(s) = r.as_str() {
                                eprintln!("  {s}");
                            }
                        }
                    }
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("native_bench: gate could not compare the documents: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
