//! Emit `BENCH_native.json`: the native hot-path benchmark comparing the lock-free
//! Chase–Lev deque backend against the mutex-protected `SimpleDeque` across workloads and
//! thread counts.
//!
//! ```text
//! native_bench [--size smoke|full] [--out PATH] [--threads 1,2,4] [--repeats N]
//!              [--check-against BASELINE.json]
//! ```
//!
//! The process installs a counting global allocator so the suite can report
//! allocations-per-fork (the "is `join` really allocation-free" trajectory number). After
//! writing, the document is re-read and structurally validated; any problem — malformed
//! JSON, a panicking backend — exits nonzero, which is what the CI smoke step checks.
//!
//! `--check-against BASELINE.json` additionally diffs the freshly written document's
//! *structure* against a committed baseline (same record field set, every
//! workload/backend combination present, uniform per-combination row counts), so a
//! silently dropped workload row fails the build instead of shrinking the file unnoticed.

use rws_bench::native_bench::{
    check_against, run_suite, to_json, validate_json, BenchConfig, SizeClass,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};

// NOTE: duplicated in crates/runtime/tests/alloc_free_join.rs — a #[global_allocator] must
// be declared in each binary crate root, so only the wrapper could be shared, at the cost
// of a public test-support surface on rws-runtime. Keep the two copies in sync.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn usage() -> ! {
    eprintln!(
        "usage: native_bench [--size smoke|full] [--out PATH] [--threads 1,2,4] [--repeats N] \
         [--check-against BASELINE.json]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut size = SizeClass::Full;
    let mut out = String::from("BENCH_native.json");
    let mut threads: Option<Vec<usize>> = None;
    let mut repeats: Option<usize> = None;
    let mut baseline: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--size" => {
                size = it.next().and_then(|s| SizeClass::parse(s)).unwrap_or_else(|| usage())
            }
            "--out" => out = it.next().cloned().unwrap_or_else(|| usage()),
            "--threads" => {
                let list = it.next().unwrap_or_else(|| usage());
                let parsed: Result<Vec<usize>, _> =
                    list.split(',').map(|t| t.trim().parse::<usize>()).collect();
                threads = Some(parsed.unwrap_or_else(|_| usage()));
            }
            "--repeats" => {
                repeats = Some(
                    it.next()
                        .and_then(|r| r.parse().ok())
                        .filter(|&r| r > 0)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--check-against" => baseline = Some(it.next().cloned().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }

    let mut cfg = BenchConfig::for_size(size);
    if let Some(t) = threads {
        cfg.threads = t;
    }
    if let Some(r) = repeats {
        cfg.repeats = r;
    }

    eprintln!(
        "native_bench: size={} threads={:?} repeats={} -> {}",
        cfg.size.name(),
        cfg.threads,
        cfg.repeats,
        out
    );
    let records = run_suite(&cfg, || ALLOCATIONS.load(Ordering::Relaxed));
    for r in &records {
        eprintln!(
            "  {:>13} {:>8} t={}  median {:>12} ns  steals {:>6}  jobs {:>8}  retries {:>5}  \
             parks {:>4}  allocs/fork {:.4}",
            r.workload,
            r.backend,
            r.threads,
            r.wall_ns_median,
            r.steals,
            r.jobs,
            r.steal_retries,
            r.parks,
            r.allocs_per_fork
        );
    }
    let doc = to_json(&cfg, &records);
    if let Err(e) = std::fs::write(&out, &doc) {
        eprintln!("native_bench: failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    // Validate what actually landed on disk, not the in-memory string.
    let written = match std::fs::read_to_string(&out) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("native_bench: failed to re-read {out}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = validate_json(&written) {
        eprintln!("native_bench: {out} is malformed: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(baseline_path) = &baseline {
        let baseline_doc = match std::fs::read_to_string(baseline_path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("native_bench: cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = check_against(&written, &baseline_doc) {
            eprintln!("native_bench: {out} does not match the {baseline_path} schema: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("native_bench: {out} structurally matches {baseline_path}");
    }
    eprintln!("native_bench: wrote {out} ({} records)", records.len());
    ExitCode::SUCCESS
}
