//! Experiment harness for the RWS-with-false-sharing reproduction.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p rws-bench --bin experiments -- all        # every experiment
//! cargo run --release -p rws-bench --bin experiments -- quick      # smaller instances
//! cargo run --release -p rws-bench --bin experiments -- e11        # one experiment
//! ```
//!
//! The experiment ids (`e1` … `e20`) are indexed in DESIGN.md §5; measured-vs-predicted
//! summaries are recorded in EXPERIMENTS.md.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("quick");
    let quick = args.iter().any(|a| a == "--quick") || name == "quick";
    println!("RWS with false sharing — experiment harness");
    println!("machine model defaults: M = 4096 words, B = 8 words, b = 4, s = 8 (see DESIGN.md)");
    rws_bench::experiments::run(name, quick);
}
