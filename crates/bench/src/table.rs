//! Minimal aligned-text table printing for the experiment harness (no external dependency).

/// A simple text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must have as many cells as there are headers).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width must match header width");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table as an aligned string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:>width$}  ", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float compactly (3 significant-ish decimals, fixed width friendly).
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{:.0}", x)
    } else if x.abs() >= 10.0 {
        format!("{:.1}", x)
    } else {
        format!("{:.3}", x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["p", "steals", "bound"]);
        t.row(vec!["2".into(), "17".into(), "123.4".into()]);
        t.row(vec!["16".into(), "170".into(), "1234.5".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("steals"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(7.65432), "7.654");
        assert_eq!(fnum(42.42), "42.4");
        assert_eq!(fnum(12345.6), "12346");
    }
}
