//! The native hot-path benchmark suite behind the `native_bench` binary and
//! `BENCH_native.json`.
//!
//! Runs a set of fork-join workloads on both deque backends of `rws-runtime` — the
//! lock-free Chase–Lev deque (`chaselev`) and the mutex-protected `SimpleDeque`
//! (`simple`) — across a thread sweep, and records per configuration the median wall time,
//! the pool's steal/retry/park counter deltas, and (when the caller supplies an
//! allocation-counter hook, as the binary's counting global allocator does)
//! allocations-per-fork. The output is the JSON perf trajectory future PRs must beat.
//!
//! The JSON renders through the workspace's one writer, [`rws_lab::json`] (the vendored
//! `serde` is a no-op marker, so emission is hand-rolled — but hand-rolled once, there);
//! the structural [`validate_json`] check runs after every write so a malformed emission
//! fails loudly (in CI, the bench smoke step).

use rws_algos::fft::fft_native;
use rws_algos::listrank::list_ranking_native;
use rws_algos::prefix::prefix_sums_native;
use rws_algos::sort::merge_sort_native;
use rws_algos::transpose::{bi_to_rm_native, rm_to_bi_native, transpose_native_bi};
use rws_lab::json::{self, obj, Json};
use rws_runtime::{join, DequeBackend, ThreadPool, ThreadPoolBuilder};
use std::sync::Arc;
use std::time::Instant;

/// How big the suite's inputs are.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SizeClass {
    /// Tiny inputs for CI smoke runs: seconds, not minutes.
    Smoke,
    /// The committed-baseline sizes.
    Full,
}

impl SizeClass {
    /// Parse a `--size` argument.
    pub fn parse(s: &str) -> Option<SizeClass> {
        match s {
            "smoke" => Some(SizeClass::Smoke),
            "full" => Some(SizeClass::Full),
            _ => None,
        }
    }

    /// The size's name as it appears in the JSON.
    pub fn name(self) -> &'static str {
        match self {
            SizeClass::Smoke => "smoke",
            SizeClass::Full => "full",
        }
    }
}

/// Suite configuration.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Input sizes.
    pub size: SizeClass,
    /// Worker-thread counts to sweep.
    pub threads: Vec<usize>,
    /// Timed repetitions per configuration (the median is reported).
    pub repeats: usize,
}

impl BenchConfig {
    /// The default sweep for a size class.
    pub fn for_size(size: SizeClass) -> Self {
        match size {
            SizeClass::Smoke => BenchConfig { size, threads: vec![1, 4], repeats: 1 },
            SizeClass::Full => BenchConfig { size, threads: vec![1, 2, 4, 8], repeats: 7 },
        }
    }
}

/// One (workload, backend, threads) measurement.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Workload name (`recursive-sum`, `matmul`, …).
    pub workload: String,
    /// Deque backend name (`chaselev` or `simple`).
    pub backend: String,
    /// Worker threads in the pool.
    pub threads: usize,
    /// Median wall time over the repeats, nanoseconds.
    pub wall_ns_median: u64,
    /// Fastest repeat, nanoseconds.
    pub wall_ns_min: u64,
    /// Successful steals (pool counter delta, median run).
    pub steals: u64,
    /// Fork branches executed (pool counter delta, median run).
    pub jobs: u64,
    /// Steal attempts that lost a CAS race (`Steal::Retry`; always 0 on `simple`).
    pub steal_retries: u64,
    /// Times a worker parked during the run.
    pub parks: u64,
    /// Heap allocations observed during the median run (0 when no hook was supplied).
    pub allocs: u64,
    /// Allocations per executed fork branch — the "is `join` really allocation-free"
    /// trajectory number (includes the workload's own result buffers, identical across
    /// backends).
    pub allocs_per_fork: f64,
}

fn backend_name(b: DequeBackend) -> &'static str {
    match b {
        DequeBackend::Crossbeam => "chaselev",
        DequeBackend::Simple => "simple",
    }
}

fn recursive_sum(lo: u64, hi: u64) -> u64 {
    if hi - lo <= 1024 {
        return (lo..hi).sum();
    }
    let mid = lo + (hi - lo) / 2;
    let (a, b) = join(move || recursive_sum(lo, mid), move || recursive_sum(mid, hi));
    a + b
}

/// In-place fork-join matmul: recurse over output row bands, then over column segments of a
/// single row, down to `grain`-column leaves. Unlike `rws_algos::matmul_native_bi` (whose
/// per-node temporaries make it allocator-bound — thousands of allocations per fork), this
/// decomposition allocates nothing, so its wall time actually measures the fork/steal hot
/// path this benchmark exists to track. The fine grain is deliberate: thousands of
/// sub-microsecond tasks are exactly the regime where deque overhead shows.
fn mm_rows(a: &[f64], bt: &[f64], c: &mut [f64], n: usize, row0: usize, grain: usize) {
    let rows = c.len() / n;
    if rows == 1 {
        mm_cols(a, bt, c, n, row0, 0, grain);
        return;
    }
    let mid = rows / 2;
    let (lo, hi) = c.split_at_mut(mid * n);
    join(|| mm_rows(a, bt, lo, n, row0, grain), || mm_rows(a, bt, hi, n, row0 + mid, grain));
}

/// `bt` is B transposed, so a leaf reads contiguous rows of both operands: the leaf stays
/// compute-bound and small, keeping scheduler overhead — the thing under test — visible
/// instead of being buried under strided-access memory stalls.
fn mm_cols(a: &[f64], bt: &[f64], row: &mut [f64], n: usize, i: usize, col0: usize, grain: usize) {
    if row.len() <= grain {
        let arow = &a[i * n..(i + 1) * n];
        for (jj, out) in row.iter_mut().enumerate() {
            let j = col0 + jj;
            let brow = &bt[j * n..(j + 1) * n];
            let mut acc = 0.0;
            for k in 0..n {
                acc += arow[k] * brow[k];
            }
            *out = acc;
        }
        return;
    }
    let mid = row.len() / 2;
    let (l, r) = row.split_at_mut(mid);
    join(|| mm_cols(a, bt, l, n, i, col0, grain), || mm_cols(a, bt, r, n, i, col0 + mid, grain));
}

struct WorkloadSpec {
    name: &'static str,
    /// Runs the workload once on the given pool and returns a checksum (forcing the result
    /// to actually be computed). Inputs are generated once, outside every timed window.
    run: Box<dyn Fn(&ThreadPool) -> u64>,
}

fn suite(size: SizeClass) -> Vec<WorkloadSpec> {
    let (sum_n, mm_n, mm_iters, prefix_n, sort_n) = match size {
        SizeClass::Smoke => (1u64 << 18, 32usize, 2usize, 1usize << 14, 1usize << 14),
        SizeClass::Full => (1u64 << 23, 128usize, 10usize, 1usize << 20, 1usize << 20),
    };
    let (fft_n, tr_n, lr_n) = match size {
        SizeClass::Smoke => (1usize << 12, 64usize, 1usize << 14),
        SizeClass::Full => (1usize << 16, 512usize, 1usize << 19),
    };
    let mm_a: Arc<Vec<f64>> = Arc::new((0..mm_n * mm_n).map(|i| (i % 7) as f64).collect());
    // Stored transposed (see `mm_cols`); as bench input it is simply an arbitrary matrix.
    let mm_bt: Arc<Vec<f64>> = Arc::new((0..mm_n * mm_n).map(|i| (i % 5) as f64).collect());
    let prefix_x: Arc<Vec<i64>> = Arc::new((0..prefix_n as i64).collect());
    let sort_keys: Arc<Vec<u64>> =
        Arc::new((0..sort_n as u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect());
    let fft_input: Arc<Vec<(f64, f64)>> = Arc::new(
        (0..fft_n)
            .map(|i| (((i % 17) as f64 - 8.0) / 8.0, ((i % 23) as f64 - 11.0) / 11.0))
            .collect(),
    );
    let tr_rm: Arc<Vec<f64>> = Arc::new((0..tr_n * tr_n).map(|i| (i % 11) as f64).collect());
    // A deterministic permutation chain: visit nodes in a bit-mixed order, self-loop tail.
    let lr_succ: Arc<Vec<usize>> = Arc::new({
        let mut order: Vec<usize> = (0..lr_n).collect();
        order.sort_by_key(|&i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut succ = vec![0usize; lr_n];
        for w in order.windows(2) {
            succ[w[0]] = w[1];
        }
        succ[order[lr_n - 1]] = order[lr_n - 1];
        succ
    });
    vec![
        WorkloadSpec {
            name: "recursive-sum",
            run: Box::new(move |pool| pool.install(move || recursive_sum(0, sum_n))),
        },
        WorkloadSpec {
            name: "matmul",
            run: Box::new(move |pool| {
                let a = Arc::clone(&mm_a);
                let bt = Arc::clone(&mm_bt);
                pool.install(move || {
                    let mut c = vec![0.0f64; mm_n * mm_n];
                    for _ in 0..mm_iters {
                        mm_rows(&a, &bt, &mut c, mm_n, 0, 1);
                    }
                    c.iter().map(|v| v.to_bits()).fold(0u64, u64::wrapping_add)
                })
            }),
        },
        WorkloadSpec {
            name: "prefix-sums",
            run: Box::new(move |pool| {
                let x = Arc::clone(&prefix_x);
                let out = pool.install(move || prefix_sums_native(&x));
                out.last().copied().unwrap_or(0) as u64
            }),
        },
        WorkloadSpec {
            name: "merge-sort",
            run: Box::new(move |pool| {
                let keys = Arc::clone(&sort_keys);
                let sorted = pool.install(move || merge_sort_native(&keys, 512));
                sorted[sorted.len() / 2]
            }),
        },
        WorkloadSpec {
            name: "fft",
            run: Box::new(move |pool| {
                let input = Arc::clone(&fft_input);
                let out = pool.install(move || fft_native(&input, 16));
                // Fold the exact bit patterns: the kernel's evaluation order is fixed
                // regardless of which worker runs each branch, so the checksum is stable.
                out.iter().map(|c| c.0.to_bits() ^ c.1.to_bits()).fold(0u64, u64::wrapping_add)
            }),
        },
        WorkloadSpec {
            name: "transpose-bi",
            run: Box::new(move |pool| {
                let a = Arc::clone(&tr_rm);
                let out = pool.install(move || {
                    let mut bi = rm_to_bi_native(&a, tr_n, 16);
                    transpose_native_bi(&mut bi, tr_n, 16);
                    bi_to_rm_native(&bi, tr_n, 16)
                });
                out.iter().map(|v| v.to_bits()).fold(0u64, u64::wrapping_add)
            }),
        },
        WorkloadSpec {
            name: "list-ranking",
            run: Box::new(move |pool| {
                let succ = Arc::clone(&lr_succ);
                let ranks = pool.install(move || list_ranking_native(&succ));
                ranks.iter().fold(0u64, |acc, &r| acc.wrapping_add(r))
            }),
        },
    ]
}

struct OneRun {
    wall_ns: u64,
    steals: u64,
    jobs: u64,
    retries: u64,
    parks: u64,
    allocs: u64,
}

/// Run the full suite. `alloc_count` reads the process-wide allocation counter (the binary
/// installs a counting global allocator; library callers can pass `|| 0`).
pub fn run_suite(cfg: &BenchConfig, alloc_count: impl Fn() -> u64) -> Vec<BenchRecord> {
    let mut records = Vec::new();
    for spec in suite(cfg.size) {
        for &backend in &[DequeBackend::Crossbeam, DequeBackend::Simple] {
            for &threads in &cfg.threads {
                // One pool per configuration: counters attribute through deltas, and pool
                // construction stays outside every timed window (the hot path is what is
                // being measured, not thread spawning). One untimed warm-up run absorbs
                // first-touch costs.
                let pool = ThreadPoolBuilder::new().threads(threads).backend(backend).build();
                let warm = (spec.run)(&pool);
                let mut runs: Vec<OneRun> = Vec::with_capacity(cfg.repeats);
                for _ in 0..cfg.repeats {
                    let steals0 = pool.stats().total_steals();
                    let jobs0 = pool.stats().total_jobs();
                    let retries0 = pool.stats().total_retries();
                    let parks0 = pool.stats().total_parks();
                    let allocs0 = alloc_count();
                    let start = Instant::now();
                    let check = (spec.run)(&pool);
                    let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    assert_eq!(check, warm, "{}: nondeterministic checksum", spec.name);
                    runs.push(OneRun {
                        wall_ns,
                        steals: pool.stats().total_steals() - steals0,
                        jobs: pool.stats().total_jobs() - jobs0,
                        retries: pool.stats().total_retries() - retries0,
                        parks: pool.stats().total_parks() - parks0,
                        allocs: alloc_count() - allocs0,
                    });
                }
                runs.sort_by_key(|r| r.wall_ns);
                let median = &runs[runs.len() / 2];
                records.push(BenchRecord {
                    workload: spec.name.to_string(),
                    backend: backend_name(backend).to_string(),
                    threads,
                    wall_ns_median: median.wall_ns,
                    wall_ns_min: runs[0].wall_ns,
                    steals: median.steals,
                    jobs: median.jobs,
                    steal_retries: median.retries,
                    parks: median.parks,
                    allocs: median.allocs,
                    allocs_per_fork: if median.jobs == 0 {
                        0.0
                    } else {
                        median.allocs as f64 / median.jobs as f64
                    },
                });
            }
        }
    }
    records
}

/// Head-to-head comparison derived from the records: for each (workload, threads), the
/// chaselev-vs-simple speedup on median wall time.
pub fn comparisons(records: &[BenchRecord]) -> Vec<(String, usize, u64, u64, f64)> {
    let mut out = Vec::new();
    for r in records.iter().filter(|r| r.backend == "chaselev") {
        if let Some(s) = records
            .iter()
            .find(|s| s.backend == "simple" && s.workload == r.workload && s.threads == r.threads)
        {
            let speedup = if r.wall_ns_median == 0 {
                1.0
            } else {
                s.wall_ns_median as f64 / r.wall_ns_median as f64
            };
            out.push((r.workload.clone(), r.threads, r.wall_ns_median, s.wall_ns_median, speedup));
        }
    }
    out
}

/// Serialize the suite results as the `BENCH_native.json` document (rendered through the
/// shared [`rws_lab::json`] writer — one escaping and number-formatting path workspace-wide).
pub fn to_json(cfg: &BenchConfig, records: &[BenchRecord]) -> String {
    let recs: Vec<Json> = records
        .iter()
        .map(|r| {
            obj([
                ("workload", r.workload.as_str().into()),
                ("backend", r.backend.as_str().into()),
                ("threads", r.threads.into()),
                ("wall_ns_median", r.wall_ns_median.into()),
                ("wall_ns_min", r.wall_ns_min.into()),
                ("steals", r.steals.into()),
                ("jobs", r.jobs.into()),
                ("steal_retries", r.steal_retries.into()),
                ("parks", r.parks.into()),
                ("allocs", r.allocs.into()),
                ("allocs_per_fork", r.allocs_per_fork.into()),
            ])
        })
        .collect();
    let cmps: Vec<Json> = comparisons(records)
        .into_iter()
        .map(|(workload, threads, cl, simple, speedup)| {
            obj([
                ("workload", workload.into()),
                ("threads", threads.into()),
                ("chaselev_ns", cl.into()),
                ("simple_ns", simple.into()),
                ("speedup", speedup.into()),
            ])
        })
        .collect();
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(0);
    let caveat = if host == 0 {
        "host parallelism unknown (available_parallelism failed): interpret multi-thread \
         rows against the actual core count of the measuring host"
    } else if host == 1 {
        "1-CPU host: rows with threads > 1 measure oversubscription (OS time-slicing), \
         not parallel speedup; steal/park counters reflect starved scheduling"
    } else {
        "thread counts above host_parallelism measure oversubscription"
    };
    obj([
        ("schema", "rws-bench-native/v1".into()),
        ("size", cfg.size.name().into()),
        ("repeats", cfg.repeats.into()),
        ("host_parallelism", host.into()),
        ("caveat", caveat.into()),
        ("records", recs.into()),
        ("chaselev_vs_simple", cmps.into()),
    ])
    .render()
}

/// Structural validation of a `BENCH_native.json` document: well-formed JSON (via the
/// shared [`rws_lab::json`] validator) plus this emitter's required keys.
/// Returns a description of the first problem found.
pub fn validate_json(doc: &str) -> Result<(), String> {
    json::validate_with_keys(
        doc,
        &["schema", "records", "chaselev_vs_simple", "wall_ns_median", "caveat"],
    )
}

/// Structurally diff a (smoke) run's document against the committed baseline — the CI gate
/// that catches a silently dropped row or a drifted record schema, which plain
/// [`validate_json`] cannot see. Checks:
///
/// 1. both documents carry the same top-level key set and the same `schema` tag;
/// 2. every record in both documents carries exactly the baseline's per-record field set;
/// 3. every `(workload, backend)` combination in the baseline appears in the run;
/// 4. the run's per-combination record count is uniform (each combination measured at
///    every swept thread count — a single dropped row breaks the uniformity).
///
/// Returns a description of the first mismatch.
pub fn check_against(run_doc: &str, baseline_doc: &str) -> Result<(), String> {
    let run = json::parse(run_doc).map_err(|e| format!("run document: {e}"))?;
    let base = json::parse(baseline_doc).map_err(|e| format!("baseline document: {e}"))?;

    if run.keys() != base.keys() {
        return Err(format!(
            "top-level key sets differ: run has {:?}, baseline has {:?}",
            run.keys(),
            base.keys()
        ));
    }
    if run.get("schema") != base.get("schema") {
        return Err(format!(
            "schema tags differ: run {:?}, baseline {:?}",
            run.get("schema"),
            base.get("schema")
        ));
    }

    let records = |doc: &Json, which: &str| -> Result<Vec<Json>, String> {
        doc.get("records")
            .and_then(Json::as_array)
            .map(<[Json]>::to_vec)
            .ok_or(format!("{which} document has no `records` array"))
    };
    let run_records = records(&run, "run")?;
    let base_records = records(&base, "baseline")?;
    let reference_fields = base_records
        .first()
        .ok_or("baseline has no records to diff against")?
        .keys()
        .iter()
        .map(|k| k.to_string())
        .collect::<Vec<_>>();
    for (which, recs) in [("run", &run_records), ("baseline", &base_records)] {
        for (i, rec) in recs.iter().enumerate() {
            if rec.keys() != reference_fields.iter().map(String::as_str).collect::<Vec<_>>() {
                return Err(format!(
                    "{which} record {i} field set {:?} differs from the baseline schema {:?}",
                    rec.keys(),
                    reference_fields
                ));
            }
        }
    }

    let combo = |rec: &Json| -> Result<(String, String), String> {
        let field = |key: &str| {
            rec.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("record lacks a string `{key}`"))
        };
        Ok((field("workload")?, field("backend")?))
    };
    let mut run_counts: Vec<((String, String), usize)> = Vec::new();
    for rec in &run_records {
        let key = combo(rec)?;
        match run_counts.iter_mut().find(|(k, _)| *k == key) {
            Some((_, n)) => *n += 1,
            None => run_counts.push((key, 1)),
        }
    }
    for rec in &base_records {
        let key = combo(rec)?;
        if !run_counts.iter().any(|(k, _)| *k == key) {
            return Err(format!(
                "workload/backend combination {key:?} present in the baseline is missing \
                 from the run — a row was silently dropped"
            ));
        }
    }
    let expected = run_counts.iter().map(|(_, n)| *n).max().unwrap_or(0);
    for (key, n) in &run_counts {
        if *n != expected {
            return Err(format!(
                "combination {key:?} has {n} record(s) but others have {expected} — \
                 a thread-count row was silently dropped"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_records() -> Vec<BenchRecord> {
        vec![
            BenchRecord {
                workload: "recursive-sum".into(),
                backend: "chaselev".into(),
                threads: 4,
                wall_ns_median: 100,
                wall_ns_min: 90,
                steals: 5,
                jobs: 50,
                steal_retries: 1,
                parks: 2,
                allocs: 3,
                allocs_per_fork: 0.06,
            },
            BenchRecord {
                workload: "recursive-sum".into(),
                backend: "simple".into(),
                threads: 4,
                wall_ns_median: 150,
                wall_ns_min: 140,
                steals: 6,
                jobs: 50,
                steal_retries: 0,
                parks: 2,
                allocs: 3,
                allocs_per_fork: 0.06,
            },
        ]
    }

    #[test]
    fn json_emission_is_structurally_valid() {
        let cfg = BenchConfig::for_size(SizeClass::Smoke);
        let doc = to_json(&cfg, &tiny_records());
        validate_json(&doc).expect("emitted JSON must validate");
        assert!(doc.contains("\"speedup\": 1.500000"));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_json("{").is_err());
        assert!(validate_json("{}").is_err(), "required keys missing");
        assert!(validate_json("{\"schema\": \"x\", \"records\": [}]").is_err());
        let cfg = BenchConfig::for_size(SizeClass::Smoke);
        let good = to_json(&cfg, &tiny_records());
        let truncated = &good[..good.len() - 4];
        assert!(validate_json(truncated).is_err());
    }

    #[test]
    fn comparisons_pair_backends() {
        let cmps = comparisons(&tiny_records());
        assert_eq!(cmps.len(), 1);
        let (w, t, cl, simple, speedup) = &cmps[0];
        assert_eq!((w.as_str(), *t, *cl, *simple), ("recursive-sum", 4, 100, 150));
        assert!((speedup - 1.5).abs() < 1e-9);
    }

    #[test]
    fn check_against_accepts_matching_structure_and_catches_drops() {
        let cfg = BenchConfig::for_size(SizeClass::Smoke);
        let full_cfg = BenchConfig::for_size(SizeClass::Full);
        let records = tiny_records();
        let baseline = to_json(&full_cfg, &records);

        // A structurally identical run (different values are fine) passes.
        let mut faster = records.clone();
        for r in &mut faster {
            r.wall_ns_median /= 2;
        }
        check_against(&to_json(&cfg, &faster), &baseline).expect("matching structure");

        // Dropping a whole (workload, backend) combination fails.
        let dropped: Vec<BenchRecord> =
            records.iter().filter(|r| r.backend != "simple").cloned().collect();
        let err = check_against(&to_json(&cfg, &dropped), &baseline).unwrap_err();
        assert!(err.contains("silently dropped"), "{err}");

        // Dropping one thread-count row of one combination breaks count uniformity.
        let mut uneven = records.clone();
        uneven.extend(records.iter().map(|r| BenchRecord { threads: 8, ..r.clone() }));
        uneven.remove(1); // "simple" now has 1 row where "chaselev" has 2
        let err = check_against(&to_json(&cfg, &uneven), &baseline).unwrap_err();
        assert!(err.contains("thread-count row"), "{err}");

        // A drifted record schema (missing field) fails even though the JSON validates.
        let mut missing_field = to_json(&cfg, &records);
        missing_field = missing_field.replacen("      \"parks\": 2,\n", "", 1);
        rws_lab::json::validate(&missing_field).expect("still well-formed JSON");
        let err = check_against(&missing_field, &baseline).unwrap_err();
        assert!(err.contains("field set"), "{err}");

        // A different schema tag fails.
        let other_tag = baseline.replacen("rws-bench-native/v1", "rws-bench-native/v2", 1);
        assert!(check_against(&other_tag, &baseline).unwrap_err().contains("schema"));
    }

    #[test]
    fn smoke_suite_runs_end_to_end_on_both_backends() {
        // The CI smoke path in miniature: tiny sizes, one thread count, validated output.
        let cfg = BenchConfig { size: SizeClass::Smoke, threads: vec![2], repeats: 1 };
        let records = run_suite(&cfg, || 0);
        assert_eq!(records.len(), 7 * 2, "7 workloads x 2 backends");
        assert!(records.iter().all(|r| r.jobs > 0), "every run must execute forks");
        let doc = to_json(&cfg, &records);
        validate_json(&doc).expect("smoke suite JSON must validate");
    }
}
