//! The native hot-path benchmark suite behind the `native_bench` binary and
//! `BENCH_native.json`.
//!
//! Runs a set of fork-join workloads — plus the DAG-structured family (task-graph
//! workflow, BFS, SpMV, sample sort), whose sparse frontiers and dependency-released
//! bursts stress the idle path the balanced trees never touch — on both deque backends of
//! `rws-runtime` — the
//! lock-free Chase–Lev deque (`chaselev`) and the mutex-protected `SimpleDeque`
//! (`simple`) — across a thread sweep, and records per configuration the median wall time,
//! the pool's steal/retry/park counter deltas, and (when the caller supplies an
//! allocation-counter hook, as the binary's counting global allocator does)
//! allocations-per-fork. The output is the JSON perf trajectory future PRs must beat.
//!
//! Alongside the fork-join rows, [`run_service_suite`] measures the persistent job-server
//! mode ([`rws_runtime::service`]): jobs/sec through the streamed submission pipeline
//! under `Block` admission, and the shed rate plus p99 queue latency under a 4x-capacity
//! `Shed` burst. These land in the document's `service` array and are gated too (exact
//! `submitted` and outcome partition, t=1 walls, bounded shed rate).
//!
//! [`run_sharded_suite`] adds the multi-process rows: the shardable workloads partitioned
//! across `rws-shard` worker subprocesses vs the same kernels on an in-process pool with
//! the same total thread count. The structure (parts, fork counts, a zero-redistribution
//! fault ledger) is deterministic and gated exactly; the walls quantify the multi-process
//! tax and are reported, never gated.
//!
//! The JSON renders through the workspace's one writer, [`rws_lab::json`] (the vendored
//! `serde` is a no-op marker, so emission is hand-rolled — but hand-rolled once, there);
//! the structural [`validate_json`] check runs after every write so a malformed emission
//! fails loudly (in CI, the bench smoke step).
//!
//! The committed baseline is *enforced*, not just recorded: [`gate_against`] compares a
//! fresh run to `BENCH_native.json` under the [`GateConfig`] tolerances, emits a
//! machine-readable `rws-bench-delta/v1` document, and fails on regression — the
//! `native_bench --gate` path CI runs on every PR. [`trajectory_row`] /
//! [`append_trajectory`] maintain the long-run `rws-bench-trajectory/v1` history.

use rws_algos::bfs::{bfs_native, CsrGraph};
use rws_algos::fft::fft_native;
use rws_algos::listrank::list_ranking_native;
use rws_algos::prefix::prefix_sums_native;
use rws_algos::samplesort::sample_sort_native;
use rws_algos::sort::merge_sort_native;
use rws_algos::spmv::{spmv_native, CsrMatrix};
use rws_algos::taskgraph::{layered_random, workflow_native};
use rws_algos::transpose::{bi_to_rm_native, rm_to_bi_native, transpose_native_bi};
use rws_lab::json::{self, obj, Json};
use rws_runtime::{
    join, AdmissionPolicy, DequeBackend, JobServer, ServiceConfig, ServiceSnapshot, ThreadPool,
    ThreadPoolBuilder,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How big the suite's inputs are.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SizeClass {
    /// Tiny inputs for CI smoke runs: seconds, not minutes.
    Smoke,
    /// The committed-baseline sizes.
    Full,
}

impl SizeClass {
    /// Parse a `--size` argument.
    pub fn parse(s: &str) -> Option<SizeClass> {
        match s {
            "smoke" => Some(SizeClass::Smoke),
            "full" => Some(SizeClass::Full),
            _ => None,
        }
    }

    /// The size's name as it appears in the JSON.
    pub fn name(self) -> &'static str {
        match self {
            SizeClass::Smoke => "smoke",
            SizeClass::Full => "full",
        }
    }
}

/// Suite configuration.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Input sizes.
    pub size: SizeClass,
    /// Worker-thread counts to sweep.
    pub threads: Vec<usize>,
    /// Timed repetitions per configuration (the median is reported).
    pub repeats: usize,
    /// Untimed warm-up passes per configuration before the timed repeats (at least one
    /// always runs — it also produces the reference checksum): first-touch page faults,
    /// allocator pool growth, and branch-predictor training all land here instead of in
    /// the first timed repeat.
    pub warmup: usize,
}

impl BenchConfig {
    /// The default sweep for a size class (these defaults are recorded in the JSON header,
    /// so a baseline is self-describing).
    pub fn for_size(size: SizeClass) -> Self {
        match size {
            SizeClass::Smoke => BenchConfig { size, threads: vec![1, 4], repeats: 1, warmup: 1 },
            SizeClass::Full => {
                BenchConfig { size, threads: vec![1, 2, 4, 8], repeats: 7, warmup: 2 }
            }
        }
    }
}

/// One (workload, backend, threads) measurement.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Workload name (`recursive-sum`, `matmul`, …).
    pub workload: String,
    /// Deque backend name (`chaselev` or `simple`).
    pub backend: String,
    /// Worker threads in the pool.
    pub threads: usize,
    /// Median wall time over the repeats, nanoseconds.
    pub wall_ns_median: u64,
    /// Fastest repeat, nanoseconds.
    pub wall_ns_min: u64,
    /// Successful steals (pool counter delta, median run) — one event per migrated task,
    /// the paper's view.
    pub steals: u64,
    /// Successful steal *operations* (victim visits; a batch of `k` tasks counts once) —
    /// the CAS-traffic view. `steals / batch_steals` is the average batch size.
    pub batch_steals: u64,
    /// Fork branches executed (pool counter delta, median run).
    pub jobs: u64,
    /// Steal attempts that lost a CAS race (`Steal::Retry`; always 0 on `simple`).
    pub steal_retries: u64,
    /// Times a worker parked during the run.
    pub parks: u64,
    /// Heap allocations observed during the median run (0 when no hook was supplied).
    pub allocs: u64,
    /// Allocations per executed fork branch — the "is `join` really allocation-free"
    /// trajectory number (includes the workload's own result buffers, identical across
    /// backends).
    pub allocs_per_fork: f64,
}

fn backend_name(b: DequeBackend) -> &'static str {
    match b {
        DequeBackend::Crossbeam => "chaselev",
        DequeBackend::Simple => "simple",
    }
}

fn recursive_sum(lo: u64, hi: u64) -> u64 {
    if hi - lo <= 1024 {
        return (lo..hi).sum();
    }
    let mid = lo + (hi - lo) / 2;
    let (a, b) = join(move || recursive_sum(lo, mid), move || recursive_sum(mid, hi));
    a + b
}

/// In-place fork-join matmul: recurse over output row bands, then over column segments of a
/// single row, down to `grain`-column leaves. Unlike `rws_algos::matmul_native_bi` (whose
/// per-node temporaries make it allocator-bound — thousands of allocations per fork), this
/// decomposition allocates nothing, so its wall time actually measures the fork/steal hot
/// path this benchmark exists to track. The fine grain is deliberate: thousands of
/// sub-microsecond tasks are exactly the regime where deque overhead shows.
fn mm_rows(a: &[f64], bt: &[f64], c: &mut [f64], n: usize, row0: usize, grain: usize) {
    let rows = c.len() / n;
    if rows == 1 {
        mm_cols(a, bt, c, n, row0, 0, grain);
        return;
    }
    let mid = rows / 2;
    let (lo, hi) = c.split_at_mut(mid * n);
    join(|| mm_rows(a, bt, lo, n, row0, grain), || mm_rows(a, bt, hi, n, row0 + mid, grain));
}

/// `bt` is B transposed, so a leaf reads contiguous rows of both operands: the leaf stays
/// compute-bound and small, keeping scheduler overhead — the thing under test — visible
/// instead of being buried under strided-access memory stalls.
fn mm_cols(a: &[f64], bt: &[f64], row: &mut [f64], n: usize, i: usize, col0: usize, grain: usize) {
    if row.len() <= grain {
        let arow = &a[i * n..(i + 1) * n];
        for (jj, out) in row.iter_mut().enumerate() {
            let j = col0 + jj;
            let brow = &bt[j * n..(j + 1) * n];
            // Four independent accumulators break the single-sum dependence chain (a
            // serial chain of fused multiply-adds runs at FMA latency, not throughput)
            // and vectorize cleanly; n is a multiple of 4 at both size classes, the
            // remainder loop covers everything else.
            let mut acc = [0.0f64; 4];
            let mut ka = arow.chunks_exact(4);
            let mut kb = brow.chunks_exact(4);
            for (ca, cb) in (&mut ka).zip(&mut kb) {
                acc[0] += ca[0] * cb[0];
                acc[1] += ca[1] * cb[1];
                acc[2] += ca[2] * cb[2];
                acc[3] += ca[3] * cb[3];
            }
            let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
            for (x, y) in ka.remainder().iter().zip(kb.remainder()) {
                total += x * y;
            }
            *out = total;
        }
        return;
    }
    let mid = row.len() / 2;
    let (l, r) = row.split_at_mut(mid);
    join(|| mm_cols(a, bt, l, n, i, col0, grain), || mm_cols(a, bt, r, n, i, col0 + mid, grain));
}

struct WorkloadSpec {
    name: &'static str,
    /// Runs the workload once on the given pool and returns a checksum (forcing the result
    /// to actually be computed). Inputs are generated once, outside every timed window.
    run: Box<dyn Fn(&ThreadPool) -> u64>,
}

fn suite(size: SizeClass) -> Vec<WorkloadSpec> {
    let (sum_n, mm_n, mm_iters, prefix_n, sort_n) = match size {
        SizeClass::Smoke => (1u64 << 18, 32usize, 2usize, 1usize << 14, 1usize << 14),
        SizeClass::Full => (1u64 << 23, 128usize, 10usize, 1usize << 20, 1usize << 20),
    };
    let (fft_n, tr_n, lr_n) = match size {
        SizeClass::Smoke => (1usize << 12, 64usize, 1usize << 14),
        SizeClass::Full => (1usize << 16, 512usize, 1usize << 19),
    };
    // The DAG-structured family: a layered task graph (the idle-path stressor — sparse
    // frontiers, dependency-released bursts), level-synchronized BFS, CSR SpMV, and sample
    // sort. These rows track the scheduler's cost on irregular dependence structure, the
    // regime the fork-join rows above never enter.
    let (dag_layers, dag_width, graph_n, ss_n) = match size {
        SizeClass::Smoke => (5usize, 16usize, 1usize << 12, 1usize << 14),
        SizeClass::Full => (12usize, 96usize, 1usize << 17, 1usize << 20),
    };
    let mm_a: Arc<Vec<f64>> = Arc::new((0..mm_n * mm_n).map(|i| (i % 7) as f64).collect());
    // Stored transposed (see `mm_cols`); as bench input it is simply an arbitrary matrix.
    let mm_bt: Arc<Vec<f64>> = Arc::new((0..mm_n * mm_n).map(|i| (i % 5) as f64).collect());
    let prefix_x: Arc<Vec<i64>> = Arc::new((0..prefix_n as i64).collect());
    let sort_keys: Arc<Vec<u64>> =
        Arc::new((0..sort_n as u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect());
    let fft_input: Arc<Vec<(f64, f64)>> = Arc::new(
        (0..fft_n)
            .map(|i| (((i % 17) as f64 - 8.0) / 8.0, ((i % 23) as f64 - 11.0) / 11.0))
            .collect(),
    );
    let tr_rm: Arc<Vec<f64>> = Arc::new((0..tr_n * tr_n).map(|i| (i % 11) as f64).collect());
    let dag_graph = Arc::new(layered_random(0xDA6, dag_layers, dag_width));
    let bfs_graph = Arc::new(CsrGraph::random(0xBF5, graph_n, 4));
    let spmv_m = Arc::new(CsrMatrix::random(0x59A2, graph_n, 7));
    let spmv_x: Arc<Vec<f64>> =
        Arc::new((0..graph_n).map(|i| ((i % 13) as f64 - 6.0) / 6.0).collect());
    let ss_keys: Arc<Vec<u64>> =
        Arc::new((0..ss_n as u64).map(|i| i.wrapping_mul(0x2545_F491_4F6C_DD1D)).collect());
    let ss_buckets = (ss_n as f64).sqrt() as usize;
    // A deterministic permutation chain: visit nodes in a bit-mixed order, self-loop tail.
    let lr_succ: Arc<Vec<usize>> = Arc::new({
        let mut order: Vec<usize> = (0..lr_n).collect();
        order.sort_by_key(|&i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut succ = vec![0usize; lr_n];
        for w in order.windows(2) {
            succ[w[0]] = w[1];
        }
        succ[order[lr_n - 1]] = order[lr_n - 1];
        succ
    });
    vec![
        WorkloadSpec {
            name: "recursive-sum",
            run: Box::new(move |pool| pool.install(move || recursive_sum(0, sum_n))),
        },
        WorkloadSpec {
            name: "matmul",
            run: Box::new(move |pool| {
                let a = Arc::clone(&mm_a);
                let bt = Arc::clone(&mm_bt);
                pool.install(move || {
                    let mut c = vec![0.0f64; mm_n * mm_n];
                    for _ in 0..mm_iters {
                        mm_rows(&a, &bt, &mut c, mm_n, 0, 1);
                    }
                    c.iter().map(|v| v.to_bits()).fold(0u64, u64::wrapping_add)
                })
            }),
        },
        WorkloadSpec {
            name: "prefix-sums",
            run: Box::new(move |pool| {
                let x = Arc::clone(&prefix_x);
                let out = pool.install(move || prefix_sums_native(&x));
                out.last().copied().unwrap_or(0) as u64
            }),
        },
        WorkloadSpec {
            name: "merge-sort",
            run: Box::new(move |pool| {
                let keys = Arc::clone(&sort_keys);
                let sorted = pool.install(move || merge_sort_native(&keys, 512));
                sorted[sorted.len() / 2]
            }),
        },
        WorkloadSpec {
            name: "fft",
            run: Box::new(move |pool| {
                let input = Arc::clone(&fft_input);
                let out = pool.install(move || fft_native(&input, 16));
                // Fold the exact bit patterns: the kernel's evaluation order is fixed
                // regardless of which worker runs each branch, so the checksum is stable.
                out.iter().map(|c| c.0.to_bits() ^ c.1.to_bits()).fold(0u64, u64::wrapping_add)
            }),
        },
        WorkloadSpec {
            name: "transpose-bi",
            run: Box::new(move |pool| {
                let a = Arc::clone(&tr_rm);
                let out = pool.install(move || {
                    let mut bi = rm_to_bi_native(&a, tr_n, 16);
                    transpose_native_bi(&mut bi, tr_n, 16);
                    bi_to_rm_native(&bi, tr_n, 16)
                });
                out.iter().map(|v| v.to_bits()).fold(0u64, u64::wrapping_add)
            }),
        },
        WorkloadSpec {
            name: "list-ranking",
            run: Box::new(move |pool| {
                let succ = Arc::clone(&lr_succ);
                let ranks = pool.install(move || list_ranking_native(&succ));
                ranks.iter().fold(0u64, |acc, &r| acc.wrapping_add(r))
            }),
        },
        WorkloadSpec {
            name: "dag-workflow",
            run: Box::new(move |pool| {
                let g = Arc::clone(&dag_graph);
                let vals = pool.install(move || workflow_native(&g));
                // Node values are schedule-independent (each predecessor contributes its
                // wrapping sum exactly once), so the fold is a stable checksum.
                vals.iter().fold(0u64, |acc, &v| acc.wrapping_add(v))
            }),
        },
        WorkloadSpec {
            name: "bfs",
            run: Box::new(move |pool| {
                let g = Arc::clone(&bfs_graph);
                let dist = pool.install(move || bfs_native(&g, 0));
                dist.iter().fold(0u64, |acc, &d| acc.wrapping_add(d as u64))
            }),
        },
        WorkloadSpec {
            name: "spmv",
            run: Box::new(move |pool| {
                let m = Arc::clone(&spmv_m);
                let x = Arc::clone(&spmv_x);
                let y = pool.install(move || spmv_native(&m, &x));
                // Per-row accumulation is sequential in storage order: bit-identical on
                // every schedule, so exact bit patterns are a safe checksum.
                y.iter().map(|v| v.to_bits()).fold(0u64, u64::wrapping_add)
            }),
        },
        WorkloadSpec {
            name: "sample-sort",
            run: Box::new(move |pool| {
                let keys = Arc::clone(&ss_keys);
                let sorted = pool.install(move || sample_sort_native(&keys, ss_buckets));
                sorted[sorted.len() / 2] ^ sorted.iter().fold(0u64, |a, &k| a.wrapping_add(k))
            }),
        },
    ]
}

struct OneRun {
    wall_ns: u64,
    steals: u64,
    batch_steals: u64,
    jobs: u64,
    retries: u64,
    parks: u64,
    allocs: u64,
}

/// Run the full suite. `alloc_count` reads the process-wide allocation counter (the binary
/// installs a counting global allocator; library callers can pass `|| 0`).
pub fn run_suite(cfg: &BenchConfig, alloc_count: impl Fn() -> u64) -> Vec<BenchRecord> {
    let mut records = Vec::new();
    for spec in suite(cfg.size) {
        for &backend in &[DequeBackend::Crossbeam, DequeBackend::Simple] {
            for &threads in &cfg.threads {
                // One pool per configuration: counters attribute through deltas, and pool
                // construction stays outside every timed window (the hot path is what is
                // being measured, not thread spawning). The untimed warm-up passes absorb
                // first-touch costs; the first also produces the reference checksum.
                let pool = ThreadPoolBuilder::new().threads(threads).backend(backend).build();
                let warm = (spec.run)(&pool);
                for _ in 1..cfg.warmup {
                    let again = (spec.run)(&pool);
                    assert_eq!(again, warm, "{}: nondeterministic checksum", spec.name);
                }
                let mut runs: Vec<OneRun> = Vec::with_capacity(cfg.repeats);
                for _ in 0..cfg.repeats {
                    let steals0 = pool.stats().total_steals();
                    let batch0 = pool.stats().total_batch_steals();
                    let jobs0 = pool.stats().total_jobs();
                    let retries0 = pool.stats().total_retries();
                    let parks0 = pool.stats().total_parks();
                    let allocs0 = alloc_count();
                    let start = Instant::now();
                    let check = (spec.run)(&pool);
                    let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    assert_eq!(check, warm, "{}: nondeterministic checksum", spec.name);
                    runs.push(OneRun {
                        wall_ns,
                        steals: pool.stats().total_steals() - steals0,
                        batch_steals: pool.stats().total_batch_steals() - batch0,
                        jobs: pool.stats().total_jobs() - jobs0,
                        retries: pool.stats().total_retries() - retries0,
                        parks: pool.stats().total_parks() - parks0,
                        allocs: alloc_count() - allocs0,
                    });
                }
                runs.sort_by_key(|r| r.wall_ns);
                let median = &runs[runs.len() / 2];
                records.push(BenchRecord {
                    workload: spec.name.to_string(),
                    backend: backend_name(backend).to_string(),
                    threads,
                    wall_ns_median: median.wall_ns,
                    wall_ns_min: runs[0].wall_ns,
                    steals: median.steals,
                    batch_steals: median.batch_steals,
                    jobs: median.jobs,
                    steal_retries: median.retries,
                    parks: median.parks,
                    allocs: median.allocs,
                    allocs_per_fork: if median.jobs == 0 {
                        0.0
                    } else {
                        median.allocs as f64 / median.jobs as f64
                    },
                });
            }
        }
    }
    records
}

// ------------------------------------------------------------------------------------------
// Service-mode throughput rows
// ------------------------------------------------------------------------------------------

/// One service-mode measurement: streamed root jobs through a supervised [`JobServer`]
/// instead of one `install`ed fork-join tree. These rows track the per-job pipeline cost
/// (submission → MPMC injector → worker → settle) and the admission layer's behaviour
/// under overload — the numbers the job-server subsystem exists to keep honest.
#[derive(Clone, Debug)]
pub struct ServiceBenchRecord {
    /// Scenario name (`service-steady` or `service-overload`).
    pub scenario: String,
    /// Admission policy name (`block`, `shed`, `shed-oldest`).
    pub admission: String,
    /// Worker threads in the server's pool.
    pub threads: usize,
    /// Admission queue capacity.
    pub queue_capacity: usize,
    /// Submissions per run — fixed by the scenario, so gated exactly.
    pub submitted: u64,
    /// Jobs that ran to completion (median run).
    pub completed: u64,
    /// Submissions refused by admission (median run).
    pub shed: u64,
    /// Median wall time from first submission to last settle, nanoseconds.
    pub wall_ns_median: u64,
    /// Fastest repeat, nanoseconds.
    pub wall_ns_min: u64,
    /// Completed jobs per second on the median run (derived from the gated wall).
    pub jobs_per_sec: f64,
    /// `shed / submitted` on the median run.
    pub shed_rate: f64,
    /// p99 submission → execution-start latency, nanoseconds (reported, not gated).
    pub p99_queue_ns: u64,
    /// p99 execution-start → settle latency, nanoseconds (reported, not gated).
    pub p99_service_ns: u64,
}

fn admission_name(p: AdmissionPolicy) -> &'static str {
    match p {
        AdmissionPolicy::Block => "block",
        AdmissionPolicy::Shed => "shed",
        AdmissionPolicy::ShedOldest => "shed-oldest",
    }
}

struct ServiceScenario {
    name: &'static str,
    admission: AdmissionPolicy,
    queue_capacity: usize,
    jobs: u64,
    /// Per-job busy-spin. Zero on the steady scenario: with no work in the closure, the
    /// wall time is purely the per-job pipeline overhead under test.
    job_spin: Duration,
}

fn service_scenarios(size: SizeClass) -> Vec<ServiceScenario> {
    let (steady_jobs, burst_capacity) = match size {
        SizeClass::Smoke => (1_500u64, 64usize),
        SizeClass::Full => (30_000u64, 256usize),
    };
    vec![
        // Throughput of the bare pipeline: Block admission means every submission is
        // eventually admitted and runs, so submitted/completed/shed are all deterministic.
        ServiceScenario {
            name: "service-steady",
            admission: AdmissionPolicy::Block,
            queue_capacity: 256,
            jobs: steady_jobs,
            job_spin: Duration::ZERO,
        },
        // Admission under a 4x-capacity back-to-back burst of real (spinning) jobs: the
        // queue fills almost immediately and Shed refuses most of the tail. The shed count
        // depends on producer/consumer interleaving, so the gate bounds the shed *rate*
        // instead of demanding exactness.
        ServiceScenario {
            name: "service-overload",
            admission: AdmissionPolicy::Shed,
            queue_capacity: burst_capacity,
            jobs: (burst_capacity * 4) as u64,
            job_spin: Duration::from_micros(20),
        },
    ]
}

/// One timed run: a fresh server, `jobs` submissions, every handle awaited. Returns the
/// wall time (first submission → last settle) and the drained server's final snapshot.
fn service_one_run(sc: &ServiceScenario, threads: usize) -> (u64, ServiceSnapshot) {
    let server = JobServer::new(ServiceConfig {
        threads,
        queue_capacity: sc.queue_capacity,
        admission: sc.admission,
        ..ServiceConfig::default()
    });
    let ran = Arc::new(AtomicU64::new(0));
    let spin = sc.job_spin;
    let start = Instant::now();
    let mut handles = Vec::with_capacity(sc.jobs as usize);
    for _ in 0..sc.jobs {
        let ran = Arc::clone(&ran);
        handles.push(server.submit(move || {
            ran.fetch_add(1, Ordering::Relaxed);
            if !spin.is_zero() {
                let end = Instant::now() + spin;
                while Instant::now() < end {
                    std::hint::spin_loop();
                }
            }
        }));
    }
    for h in &handles {
        h.wait();
    }
    let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let snap = server.shutdown();
    // Free invariant checks on every bench run: no faults are injected here, so the
    // outcome partition is exactly {completed, shed}, and the counted executions (the
    // closure increments `ran`) must equal the completed count — a shed closure never ran.
    assert_eq!(
        snap.completed + snap.shed,
        snap.submitted,
        "{}: outcomes must partition submissions",
        sc.name
    );
    assert_eq!(
        ran.load(Ordering::Relaxed),
        snap.completed,
        "{}: counted executions must equal completions",
        sc.name
    );
    (wall_ns, snap)
}

/// Run the service-mode scenarios across the configured thread sweep. Each repetition uses
/// a fresh server (counters are per-server lifetime, so a fresh one gives clean per-run
/// numbers); the reported record is the median repetition by wall time.
pub fn run_service_suite(cfg: &BenchConfig) -> Vec<ServiceBenchRecord> {
    let mut records = Vec::new();
    for sc in service_scenarios(cfg.size) {
        for &threads in &cfg.threads {
            for _ in 0..cfg.warmup.max(1) {
                service_one_run(&sc, threads);
            }
            let mut runs: Vec<(u64, ServiceSnapshot)> =
                (0..cfg.repeats.max(1)).map(|_| service_one_run(&sc, threads)).collect();
            runs.sort_by_key(|r| r.0);
            let wall_min = runs[0].0;
            let (wall_med, snap) = runs[runs.len() / 2];
            let shed_rate =
                if snap.submitted == 0 { 0.0 } else { snap.shed as f64 / snap.submitted as f64 };
            let jobs_per_sec =
                if wall_med == 0 { 0.0 } else { snap.completed as f64 * 1e9 / wall_med as f64 };
            records.push(ServiceBenchRecord {
                scenario: sc.name.to_string(),
                admission: admission_name(sc.admission).to_string(),
                threads,
                queue_capacity: sc.queue_capacity,
                submitted: snap.submitted,
                completed: snap.completed,
                shed: snap.shed,
                wall_ns_median: wall_med,
                wall_ns_min: wall_min,
                jobs_per_sec,
                shed_rate,
                p99_queue_ns: snap.queue.p99_ns,
                p99_service_ns: snap.service.p99_ns,
            });
        }
    }
    records
}

// ------------------------------------------------------------------------------------------
// Flight-recorder overhead row
// ------------------------------------------------------------------------------------------

/// Ring capacity (events per lane) used by the trace-overhead measurement — the same
/// default `lab --trace` uses, so the measured cost matches what observability users pay.
pub const TRACE_BENCH_CAPACITY: usize = 1 << 16;

/// The flight-recorder overhead measurement: one deterministic workload run twice — on a
/// plain pool and on a pool built with [`ThreadPoolBuilder::trace`] — so the document
/// records what turning tracing on actually costs, and the gate can prove the *off*
/// configuration (the default every other row measures) never pays for the subsystem.
#[derive(Clone, Debug)]
pub struct TraceBenchRecord {
    /// Workload name (`recursive-sum`: the purest fork/join hot path in the suite, where
    /// per-event cost is least diluted by leaf compute).
    pub workload: String,
    /// Worker threads (1: deterministic jobs, wall gateable like the other t=1 rows).
    pub threads: usize,
    /// Ring capacity per recorder lane during the traced runs.
    pub capacity: usize,
    /// Median wall time with tracing off (the gated number), nanoseconds.
    pub wall_ns_off_median: u64,
    /// Median wall time with tracing on (reported, not gated — the cost of opting in).
    pub wall_ns_on_median: u64,
    /// `(on - off) / off`: the relative cost of the flight recorder on this workload.
    pub overhead_rel: f64,
    /// Fork branches per repeat — identical off and on (asserted), gated exactly.
    pub jobs: u64,
    /// Events the recorder accepted across the traced warm-up + repeats.
    pub events_recorded: u64,
    /// Events overwritten before the final snapshot (bounded-ring semantics).
    pub events_dropped: u64,
    /// Fraction of the traced span attributed to running jobs.
    pub busy_frac: f64,
    /// Fraction attributed to steal attempts.
    pub steal_frac: f64,
    /// Fraction attributed to parked waiting.
    pub park_frac: f64,
    /// Residual fraction (scheduler bookkeeping between attributed intervals).
    pub overhead_frac: f64,
}

/// One timed pass of the overhead workload: wall time and the pool's fork-count delta.
fn trace_one_run(pool: &ThreadPool, sum_n: u64, expect: u64) -> (u64, u64) {
    let jobs0 = pool.stats().total_jobs();
    let start = Instant::now();
    let check = pool.install(move || recursive_sum(0, sum_n));
    let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    assert_eq!(check, expect, "trace-overhead: nondeterministic checksum");
    (wall_ns, pool.stats().total_jobs() - jobs0)
}

/// Measure the flight recorder's cost: `recursive-sum` on a 1-thread chaselev pool with
/// tracing off, then on a pool built with `.trace(TRACE_BENCH_CAPACITY)`, medians over
/// `cfg.repeats`. The fork count must be identical in both modes — tracing observes the
/// schedule, it must not change it.
pub fn run_trace_overhead(cfg: &BenchConfig) -> TraceBenchRecord {
    let sum_n: u64 = match cfg.size {
        SizeClass::Smoke => 1 << 18,
        SizeClass::Full => 1 << 23,
    };
    let expect: u64 = (0..sum_n).sum();
    let threads = 1usize;

    let measure = |pool: &ThreadPool| -> (u64, u64) {
        for _ in 0..cfg.warmup.max(1) {
            trace_one_run(pool, sum_n, expect);
        }
        let mut runs: Vec<(u64, u64)> =
            (0..cfg.repeats.max(1)).map(|_| trace_one_run(pool, sum_n, expect)).collect();
        let jobs = runs[0].1;
        assert!(
            runs.iter().all(|&(_, j)| j == jobs),
            "trace-overhead: fork count must be deterministic at t=1"
        );
        runs.sort_by_key(|r| r.0);
        (runs[runs.len() / 2].0, jobs)
    };

    let off_pool =
        ThreadPoolBuilder::new().threads(threads).backend(DequeBackend::Crossbeam).build();
    let (off_median, off_jobs) = measure(&off_pool);

    let on_pool = ThreadPoolBuilder::new()
        .threads(threads)
        .backend(DequeBackend::Crossbeam)
        .trace(TRACE_BENCH_CAPACITY)
        .build();
    let (on_median, on_jobs) = measure(&on_pool);
    assert_eq!(off_jobs, on_jobs, "tracing must not change the fork count");

    let snap = on_pool.trace_snapshot().expect("traced pool must yield a snapshot");
    let profile = snap.profile();
    let span: u64 = profile.workers.iter().map(|w| w.span_ns).sum();
    let attributed = |f: fn(&rws_runtime::trace::WorkerProfile) -> u64| -> f64 {
        if span == 0 {
            0.0
        } else {
            profile.workers.iter().map(f).sum::<u64>() as f64 / span as f64
        }
    };
    TraceBenchRecord {
        workload: "recursive-sum".into(),
        threads,
        capacity: TRACE_BENCH_CAPACITY,
        wall_ns_off_median: off_median,
        wall_ns_on_median: on_median,
        overhead_rel: if off_median == 0 {
            0.0
        } else {
            (on_median as f64 - off_median as f64) / off_median as f64
        },
        jobs: off_jobs,
        events_recorded: snap.total_recorded(),
        events_dropped: snap.total_dropped(),
        busy_frac: attributed(|w| w.busy_ns),
        steal_frac: attributed(|w| w.steal_ns),
        park_frac: attributed(|w| w.park_ns),
        overhead_frac: attributed(|w| w.overhead_ns),
    }
}

// ------------------------------------------------------------------------------------------
// Sharded fork-join rows
// ------------------------------------------------------------------------------------------

/// One multi-process measurement: a shardable fork-join workload partitioned across
/// `shards` worker subprocesses by [`rws_shard::ShardedExecutor`], against the same
/// workload on an in-process pool with the same total thread count. The interesting number
/// is `overhead_rel`: what process spawning, pipe framing, and by-spec input rebuilding
/// cost relative to staying in-process. Walls are reported, not gated (subprocess spawn
/// latency is host-noise-bound); the *structure* — parts, fork counts, a clean fault
/// ledger — is deterministic and gated exactly.
#[derive(Clone, Debug)]
pub struct ShardedBenchRecord {
    /// Workload name (`matmul` or `spmv` — the by-spec-rebuildable demo instances).
    pub workload: String,
    /// Worker subprocesses.
    pub shards: usize,
    /// Native pool threads inside each worker.
    pub threads_per_shard: usize,
    /// Output parts the workload was partitioned into.
    pub parts: usize,
    /// Median sharded wall time over the repeats, nanoseconds.
    pub wall_ns_median: u64,
    /// Fastest sharded repeat, nanoseconds.
    pub wall_ns_min: u64,
    /// Median wall of the same workload on an in-process pool with
    /// `shards × threads_per_shard` threads, nanoseconds.
    pub inproc_wall_ns_median: u64,
    /// `(sharded − in-process) / in-process` on the median walls: the multi-process tax.
    pub overhead_rel: f64,
    /// Fork branches executed across all workers on the median sharded run — deterministic
    /// (a property of the per-part kernels), gated exactly.
    pub work_items: u64,
    /// Jobs redistributed after a shard death on the median run — 0 in this suite (no
    /// faults are injected), gated exactly.
    pub redistributed: u64,
}

/// Run the sharded suite: both shardable workloads × 2 worker subprocesses (1 pool thread
/// each) vs a 2-thread in-process pool. Every sharded run's output is checked against the
/// sequential reference, so a row doubles as a cross-process correctness pass.
///
/// Needs the `shard-worker` binary next to the running one — `cargo build --release -p
/// rws-shard` first (the binary's CI step does), or point `RWS_SHARD_WORKER` at it.
pub fn run_sharded_suite(cfg: &BenchConfig) -> Vec<ShardedBenchRecord> {
    use rws_exec::workloads::{MatMulWorkload, SpmvWorkload};
    use rws_exec::{Executor, NativeExecutor, SharedWorkload};
    use rws_shard::ShardedExecutor;

    let (mm_n, spmv_n) = match cfg.size {
        SizeClass::Smoke => (16usize, 512usize),
        SizeClass::Full => (32, 4096),
    };
    let workloads: Vec<(&str, SharedWorkload)> = vec![
        ("matmul", Arc::new(MatMulWorkload::demo(mm_n, 4))),
        ("spmv", Arc::new(SpmvWorkload::demo(spmv_n))),
    ];
    let (shards, threads_per_shard) = (2usize, 1usize);

    let mut records = Vec::new();
    for (name, workload) in workloads {
        let reference = workload.run_reference();

        // The in-process column: same kernel, same total thread count, one address space.
        let inproc = NativeExecutor::new(shards * threads_per_shard);
        for _ in 0..cfg.warmup.max(1) {
            inproc.execute(Arc::clone(&workload));
        }
        let mut inproc_walls: Vec<u64> = (0..cfg.repeats.max(1))
            .map(|_| {
                let outcome = inproc.execute(Arc::clone(&workload));
                assert_eq!(outcome.output, reference, "{name}: in-process run diverged");
                u64::try_from(outcome.report.wall.as_nanos()).unwrap_or(u64::MAX)
            })
            .collect();
        inproc_walls.sort_unstable();
        let inproc_median = inproc_walls[inproc_walls.len() / 2];

        // The sharded column: a fresh coordinator per repeat (each run spawns and reaps
        // its own worker processes; the executor value is pure configuration).
        let exec = ShardedExecutor::new(shards).threads_per_shard(threads_per_shard);
        for _ in 0..cfg.warmup.max(1) {
            exec.execute(Arc::clone(&workload));
        }
        let mut runs: Vec<(u64, u64, u64, usize)> = (0..cfg.repeats.max(1))
            .map(|_| {
                let outcome = exec.execute(Arc::clone(&workload));
                assert_eq!(outcome.output, reference, "{name}: sharded run diverged");
                let detail = outcome.report.shard.expect("sharded runs carry shard detail");
                assert_eq!(detail.shard_deaths, 0, "{name}: no faults are injected here");
                let wall = u64::try_from(outcome.report.wall.as_nanos()).unwrap_or(u64::MAX);
                (wall, outcome.report.work_items, detail.redistributed, detail.parts)
            })
            .collect();
        runs.sort_unstable_by_key(|r| r.0);
        let wall_min = runs[0].0;
        let (wall_median, work_items, redistributed, parts) = runs[runs.len() / 2];

        records.push(ShardedBenchRecord {
            workload: name.to_string(),
            shards,
            threads_per_shard,
            parts,
            wall_ns_median: wall_median,
            wall_ns_min: wall_min,
            inproc_wall_ns_median: inproc_median,
            overhead_rel: if inproc_median == 0 {
                0.0
            } else {
                (wall_median as f64 - inproc_median as f64) / inproc_median as f64
            },
            work_items,
            redistributed,
        });
    }
    records
}

/// Head-to-head comparison derived from the records: for each (workload, threads), the
/// chaselev-vs-simple speedup on median wall time.
pub fn comparisons(records: &[BenchRecord]) -> Vec<(String, usize, u64, u64, f64)> {
    let mut out = Vec::new();
    for r in records.iter().filter(|r| r.backend == "chaselev") {
        if let Some(s) = records
            .iter()
            .find(|s| s.backend == "simple" && s.workload == r.workload && s.threads == r.threads)
        {
            let speedup = if r.wall_ns_median == 0 {
                1.0
            } else {
                s.wall_ns_median as f64 / r.wall_ns_median as f64
            };
            out.push((r.workload.clone(), r.threads, r.wall_ns_median, s.wall_ns_median, speedup));
        }
    }
    out
}

/// Serialize the suite results as the `BENCH_native.json` document (rendered through the
/// shared [`rws_lab::json`] writer — one escaping and number-formatting path workspace-wide).
/// The `trace` key is emitted as `null`; the binary's full emission path goes through
/// [`to_json_full`], which includes the measured [`TraceBenchRecord`].
pub fn to_json(
    cfg: &BenchConfig,
    records: &[BenchRecord],
    service: &[ServiceBenchRecord],
) -> String {
    to_json_full(cfg, records, service, None, &[])
}

/// Render the trace-overhead measurement as the document's `trace` object.
fn trace_json(t: &TraceBenchRecord) -> Json {
    obj([
        ("workload", t.workload.as_str().into()),
        ("threads", t.threads.into()),
        ("capacity", t.capacity.into()),
        ("wall_ns_off_median", t.wall_ns_off_median.into()),
        ("wall_ns_on_median", t.wall_ns_on_median.into()),
        ("overhead_rel", t.overhead_rel.into()),
        ("jobs", t.jobs.into()),
        ("events_recorded", t.events_recorded.into()),
        ("events_dropped", t.events_dropped.into()),
        ("busy_frac", t.busy_frac.into()),
        ("steal_frac", t.steal_frac.into()),
        ("park_frac", t.park_frac.into()),
        ("overhead_frac", t.overhead_frac.into()),
    ])
}

/// [`to_json`] plus the flight-recorder overhead row (`trace`: an object when measured,
/// `null` when not — the key is always present, so consumers need no probing) and the
/// multi-process `sharded` rows (always present as an array, empty when the suite did not
/// run).
pub fn to_json_full(
    cfg: &BenchConfig,
    records: &[BenchRecord],
    service: &[ServiceBenchRecord],
    trace: Option<&TraceBenchRecord>,
    sharded: &[ShardedBenchRecord],
) -> String {
    let recs: Vec<Json> = records
        .iter()
        .map(|r| {
            obj([
                ("workload", r.workload.as_str().into()),
                ("backend", r.backend.as_str().into()),
                ("threads", r.threads.into()),
                ("wall_ns_median", r.wall_ns_median.into()),
                ("wall_ns_min", r.wall_ns_min.into()),
                ("steals", r.steals.into()),
                ("batch_steals", r.batch_steals.into()),
                ("jobs", r.jobs.into()),
                ("steal_retries", r.steal_retries.into()),
                ("parks", r.parks.into()),
                ("allocs", r.allocs.into()),
                ("allocs_per_fork", r.allocs_per_fork.into()),
            ])
        })
        .collect();
    let svc: Vec<Json> = service
        .iter()
        .map(|r| {
            obj([
                ("scenario", r.scenario.as_str().into()),
                ("admission", r.admission.as_str().into()),
                ("threads", r.threads.into()),
                ("queue_capacity", r.queue_capacity.into()),
                ("submitted", r.submitted.into()),
                ("completed", r.completed.into()),
                ("shed", r.shed.into()),
                ("wall_ns_median", r.wall_ns_median.into()),
                ("wall_ns_min", r.wall_ns_min.into()),
                ("jobs_per_sec", r.jobs_per_sec.into()),
                ("shed_rate", r.shed_rate.into()),
                ("p99_queue_ns", r.p99_queue_ns.into()),
                ("p99_service_ns", r.p99_service_ns.into()),
            ])
        })
        .collect();
    let shd: Vec<Json> = sharded
        .iter()
        .map(|r| {
            obj([
                ("workload", r.workload.as_str().into()),
                ("shards", r.shards.into()),
                ("threads_per_shard", r.threads_per_shard.into()),
                ("parts", r.parts.into()),
                ("wall_ns_median", r.wall_ns_median.into()),
                ("wall_ns_min", r.wall_ns_min.into()),
                ("inproc_wall_ns_median", r.inproc_wall_ns_median.into()),
                ("overhead_rel", r.overhead_rel.into()),
                ("work_items", r.work_items.into()),
                ("redistributed", r.redistributed.into()),
            ])
        })
        .collect();
    let cmps: Vec<Json> = comparisons(records)
        .into_iter()
        .map(|(workload, threads, cl, simple, speedup)| {
            obj([
                ("workload", workload.into()),
                ("threads", threads.into()),
                ("chaselev_ns", cl.into()),
                ("simple_ns", simple.into()),
                ("speedup", speedup.into()),
            ])
        })
        .collect();
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(0);
    let caveat = if host == 0 {
        "host parallelism unknown (available_parallelism failed): interpret multi-thread \
         rows against the actual core count of the measuring host"
    } else if host == 1 {
        "1-CPU host: rows with threads > 1 measure oversubscription (OS time-slicing), \
         not parallel speedup; steal/park counters reflect starved scheduling"
    } else {
        "thread counts above host_parallelism measure oversubscription"
    };
    obj([
        // v2: the `service` array (job-server throughput/shedding rows) joined the
        // document; consumers diffing against a v1 baseline must regenerate it.
        ("schema", "rws-bench-native/v2".into()),
        ("size", cfg.size.name().into()),
        ("repeats", cfg.repeats.into()),
        ("warmup", cfg.warmup.into()),
        ("host_parallelism", host.into()),
        ("caveat", caveat.into()),
        ("records", recs.into()),
        ("service", svc.into()),
        ("trace", trace.map(trace_json).unwrap_or(Json::Null)),
        ("sharded", shd.into()),
        ("chaselev_vs_simple", cmps.into()),
    ])
    .render()
}

/// Structural validation of a `BENCH_native.json` document: well-formed JSON (via the
/// shared [`rws_lab::json`] validator) plus this emitter's required keys.
/// Returns a description of the first problem found.
pub fn validate_json(doc: &str) -> Result<(), String> {
    json::validate_with_keys(
        doc,
        &[
            "schema",
            "records",
            "service",
            "trace",
            "sharded",
            "chaselev_vs_simple",
            "wall_ns_median",
            "caveat",
        ],
    )
}

/// Structurally diff a (smoke) run's document against the committed baseline — the CI gate
/// that catches a silently dropped row or a drifted record schema, which plain
/// [`validate_json`] cannot see. The comparison is **forward-compatible**: the baseline's
/// structure must be a *subset* of the run's, so a run emitted by a newer binary (extra
/// top-level keys, extra per-record fields) still checks cleanly against an older committed
/// baseline, while anything the baseline promises that the run dropped fails. Checks:
///
/// 1. every baseline top-level key appears in the run (run-only extras are ignored), and
///    the `schema` tags are identical;
/// 2. every record in both documents carries at least the baseline's per-record field set
///    (a field *missing* from a run record still fails; run-only extra fields pass);
/// 3. every `(workload, backend)` combination in the baseline appears in the run;
/// 4. the run's per-combination record count is uniform (each combination measured at
///    every swept thread count — a single dropped row breaks the uniformity).
///
/// Returns a description of the first mismatch.
pub fn check_against(run_doc: &str, baseline_doc: &str) -> Result<(), String> {
    let run = json::parse(run_doc).map_err(|e| format!("run document: {e}"))?;
    let base = json::parse(baseline_doc).map_err(|e| format!("baseline document: {e}"))?;

    for key in base.keys() {
        if !run.keys().contains(&key) {
            return Err(format!(
                "baseline top-level key `{key}` is missing from the run (run has {:?}) — \
                 a section was silently dropped",
                run.keys()
            ));
        }
    }
    if run.get("schema") != base.get("schema") {
        return Err(format!(
            "schema tags differ: run {:?}, baseline {:?}",
            run.get("schema"),
            base.get("schema")
        ));
    }

    let records = |doc: &Json, which: &str| -> Result<Vec<Json>, String> {
        doc.get("records")
            .and_then(Json::as_array)
            .map(<[Json]>::to_vec)
            .ok_or(format!("{which} document has no `records` array"))
    };
    let run_records = records(&run, "run")?;
    let base_records = records(&base, "baseline")?;
    let reference_fields = base_records
        .first()
        .ok_or("baseline has no records to diff against")?
        .keys()
        .iter()
        .map(|k| k.to_string())
        .collect::<Vec<_>>();
    for (which, recs) in [("run", &run_records), ("baseline", &base_records)] {
        for (i, rec) in recs.iter().enumerate() {
            if let Some(lost) = reference_fields.iter().find(|f| !rec.keys().contains(&f.as_str()))
            {
                return Err(format!(
                    "{which} record {i} field set {:?} lacks `{lost}` from the baseline \
                     schema {:?}",
                    rec.keys(),
                    reference_fields
                ));
            }
        }
    }

    let combo = |rec: &Json| -> Result<(String, String), String> {
        let field = |key: &str| {
            rec.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("record lacks a string `{key}`"))
        };
        Ok((field("workload")?, field("backend")?))
    };
    let mut run_counts: Vec<((String, String), usize)> = Vec::new();
    for rec in &run_records {
        let key = combo(rec)?;
        match run_counts.iter_mut().find(|(k, _)| *k == key) {
            Some((_, n)) => *n += 1,
            None => run_counts.push((key, 1)),
        }
    }
    for rec in &base_records {
        let key = combo(rec)?;
        if !run_counts.iter().any(|(k, _)| *k == key) {
            return Err(format!(
                "workload/backend combination {key:?} present in the baseline is missing \
                 from the run — a row was silently dropped"
            ));
        }
    }
    let expected = run_counts.iter().map(|(_, n)| *n).max().unwrap_or(0);
    for (key, n) in &run_counts {
        if *n != expected {
            return Err(format!(
                "combination {key:?} has {n} record(s) but others have {expected} — \
                 a thread-count row was silently dropped"
            ));
        }
    }

    // The service rows get the same structural treatment: every row carries the baseline's
    // field set, and every baseline scenario appears in the run (the run may sweep fewer
    // thread counts, so only scenario presence — not row counts — is required).
    let service = |doc: &Json, which: &str| -> Result<Vec<Json>, String> {
        doc.get("service")
            .and_then(Json::as_array)
            .map(<[Json]>::to_vec)
            .ok_or(format!("{which} document has no `service` array"))
    };
    let run_service = service(&run, "run")?;
    let base_service = service(&base, "baseline")?;
    if let Some(reference) = base_service.first() {
        let fields = reference.keys();
        for (which, recs) in [("run", &run_service), ("baseline", &base_service)] {
            for (i, rec) in recs.iter().enumerate() {
                if let Some(lost) = fields.iter().find(|f| !rec.keys().contains(f)) {
                    return Err(format!(
                        "{which} service record {i} field set {:?} lacks `{lost}` from the \
                         baseline schema {fields:?}",
                        rec.keys()
                    ));
                }
            }
        }
        for rec in &base_service {
            let name = rec
                .get("scenario")
                .and_then(Json::as_str)
                .ok_or("baseline service record lacks a string `scenario`")?;
            if !run_service.iter().any(|r| r.get("scenario") == rec.get("scenario")) {
                return Err(format!(
                    "service scenario {name:?} present in the baseline is missing from \
                     the run — a row was silently dropped"
                ));
            }
        }
    }

    // And the multi-process `sharded` rows: same field-set rule, with presence matched by
    // workload. Documents predating the sharded suite simply lack the key (the top-level
    // subset check above already handles that direction).
    let sharded_of = |doc: &Json| -> Vec<Json> {
        doc.get("sharded").and_then(Json::as_array).map(<[Json]>::to_vec).unwrap_or_default()
    };
    let run_sharded = sharded_of(&run);
    let base_sharded = sharded_of(&base);
    if let Some(reference) = base_sharded.first() {
        let fields = reference.keys();
        for (which, recs) in [("run", &run_sharded), ("baseline", &base_sharded)] {
            for (i, rec) in recs.iter().enumerate() {
                if let Some(lost) = fields.iter().find(|f| !rec.keys().contains(f)) {
                    return Err(format!(
                        "{which} sharded record {i} field set {:?} lacks `{lost}` from the \
                         baseline schema {fields:?}",
                        rec.keys()
                    ));
                }
            }
        }
        for rec in &base_sharded {
            let name = rec
                .get("workload")
                .and_then(Json::as_str)
                .ok_or("baseline sharded record lacks a string `workload`")?;
            if !run_sharded.iter().any(|r| r.get("workload") == rec.get("workload")) {
                return Err(format!(
                    "sharded workload {name:?} present in the baseline is missing from \
                     the run — a row was silently dropped"
                ));
            }
        }
    }
    Ok(())
}

// ------------------------------------------------------------------------------------------
// The perf-regression gate
// ------------------------------------------------------------------------------------------

/// Tolerances of the perf-regression gate ([`gate_against`]).
///
/// The defaults encode what is actually deterministic on this suite:
///
/// * **`threads = 1` wall times** are gated with a *relative* tolerance — generous
///   (35%) because CI hosts are noisy and shared, yet tight enough that a hot-path change
///   costing 2x fails loudly.
/// * **Deterministic counters** (`jobs` at every thread count; `allocs`, `steals`,
///   `batch_steals`, `steal_retries` at `threads = 1`, where a lone worker never steals)
///   are gated **exactly**: they cannot drift honestly.
/// * **`threads > 1` wall times and parks are not gated at all** — the committed baseline
///   may come from a 1-CPU host (see the document's `caveat`), where those rows measure OS
///   time-slicing, not the scheduler.
/// * **`threads > 1` `steal_retries`** get a loose upper bound (`base · retry_factor +
///   retry_slack`): scheduling-dependent, but an explosion in lost CAS races is precisely
///   the kind of regression batching exists to prevent.
/// * **Service rows** (matched by `(scenario, threads)`): `submitted` and the
///   `completed + shed == submitted` partition are exact; `threads = 1` wall medians use
///   `wall_rel_tol`; the shed rate is bounded above by `baseline + shed_slack` (shedding
///   *less* is the good direction, so no lower bound). `jobs_per_sec` is derived from the
///   gated wall and the p99 latencies are scheduling-noise-bound, so neither is gated
///   directly.
/// * **The trace-overhead row** (when both documents carry one): the *tracing-off* wall is
///   gated with `wall_rel_tol` and `jobs` exactly — proof the always-compiled flight
///   recorder stays free when it is off. The tracing-on wall is reported, not gated.
/// * **Sharded rows** (matched by `(workload, shards, threads_per_shard)`, when both
///   documents carry a `sharded` array): `parts` and `work_items` are exact,
///   `redistributed` must be 0 (a fault-free suite whose workers died is broken), and the
///   walls — sharded and in-process alike — are reported, never gated: subprocess spawn
///   latency is host noise.
#[derive(Clone, Copy, Debug)]
pub struct GateConfig {
    /// Relative tolerance on `threads = 1` median wall times (0.35 = +35%).
    pub wall_rel_tol: f64,
    /// Multiplier on baseline `steal_retries` for `threads > 1` rows.
    pub retry_factor: u64,
    /// Absolute slack added to the `threads > 1` retry bound (covers near-zero baselines).
    pub retry_slack: u64,
    /// Absolute slack on service-row shed rates above the baseline (0.20 = +20 points).
    pub shed_slack: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig { wall_rel_tol: 0.35, retry_factor: 16, retry_slack: 256, shed_slack: 0.20 }
    }
}

/// Gate a run document against the committed baseline. Returns the machine-readable delta
/// document (schema `rws-bench-delta/v1`) and whether the gate passed; `Err` means the
/// documents could not be compared at all (which CI also treats as failure).
///
/// Rows are matched by `(workload, backend, threads)`. Every run row must have a baseline
/// counterpart (a missing one means the suite grew — regenerate `BENCH_native.json`);
/// baseline rows absent from the run are ignored, so CI may gate on a subset sweep. Both
/// documents must carry the same `size` class — comparing smoke walls against full
/// baselines would be meaningless.
pub fn gate_against(
    run_doc: &str,
    baseline_doc: &str,
    gate: &GateConfig,
) -> Result<(String, bool), String> {
    let run = json::parse(run_doc).map_err(|e| format!("run document: {e}"))?;
    let base = json::parse(baseline_doc).map_err(|e| format!("baseline document: {e}"))?;
    if run.get("schema") != base.get("schema") {
        return Err(format!(
            "schema tags differ: run {:?}, baseline {:?}",
            run.get("schema"),
            base.get("schema")
        ));
    }
    if run.get("size") != base.get("size") {
        return Err(format!(
            "size classes differ (run {:?}, baseline {:?}): gate runs must use the \
             baseline's size",
            run.get("size"),
            base.get("size")
        ));
    }
    let records = |doc: &Json, which: &str| -> Result<Vec<Json>, String> {
        doc.get("records")
            .and_then(Json::as_array)
            .map(<[Json]>::to_vec)
            .ok_or(format!("{which} document has no `records` array"))
    };
    let run_records = records(&run, "run")?;
    let base_records = records(&base, "baseline")?;

    let text = |rec: &Json, k: &str| -> Result<String, String> {
        rec.get(k).and_then(Json::as_str).map(str::to_string).ok_or(format!("record lacks `{k}`"))
    };
    let num = |rec: &Json, k: &str| -> Result<u64, String> {
        rec.get(k).and_then(Json::as_u64).ok_or(format!(
            "record lacks a numeric `{k}` — regenerate BENCH_native.json with this binary"
        ))
    };

    let mut rows: Vec<Json> = Vec::new();
    let mut regressions: Vec<String> = Vec::new();
    for rec in &run_records {
        let (w, b) = (text(rec, "workload")?, text(rec, "backend")?);
        let t = num(rec, "threads")?;
        let id = format!("{w}/{b} t={t}");
        let Some(base_rec) = base_records.iter().find(|r| {
            r.get("workload") == rec.get("workload")
                && r.get("backend") == rec.get("backend")
                && r.get("threads") == rec.get("threads")
        }) else {
            return Err(format!(
                "run row {id} has no baseline counterpart — the suite changed; regenerate \
                 BENCH_native.json"
            ));
        };

        let wall_run = num(rec, "wall_ns_median")?;
        let wall_base = num(base_rec, "wall_ns_median")?;
        let wall_rel = if wall_base == 0 {
            0.0
        } else {
            (wall_run as f64 - wall_base as f64) / wall_base as f64
        };
        let mut ok = true;
        if t == 1 && wall_rel > gate.wall_rel_tol {
            ok = false;
            regressions.push(format!(
                "{id}: wall_ns_median {wall_run} vs baseline {wall_base} \
                 ({:+.1}% > +{:.0}%)",
                100.0 * wall_rel,
                100.0 * gate.wall_rel_tol
            ));
        }

        let exact: &[&str] = if t == 1 {
            &["jobs", "allocs", "steals", "batch_steals", "steal_retries"]
        } else {
            &["jobs"]
        };
        let mut counters: Vec<(String, Json)> = Vec::new();
        for key in ["steals", "batch_steals", "jobs", "steal_retries", "allocs"] {
            let (r, bse) = (num(rec, key)?, num(base_rec, key)?);
            counters.push((format!("{key}_run"), r.into()));
            counters.push((format!("{key}_base"), bse.into()));
            if exact.contains(&key) && r != bse {
                ok = false;
                regressions.push(format!("{id}: {key} {r} vs baseline {bse} (gated exact)"));
            }
        }
        if t > 1 {
            let (r, bse) = (num(rec, "steal_retries")?, num(base_rec, "steal_retries")?);
            let bound = bse.saturating_mul(gate.retry_factor).saturating_add(gate.retry_slack);
            if r > bound {
                ok = false;
                regressions.push(format!(
                    "{id}: steal_retries {r} vs baseline {bse} (bound {bound} = \
                     base x{} + {})",
                    gate.retry_factor, gate.retry_slack
                ));
            }
        }

        let mut fields: Vec<(&str, Json)> = vec![
            ("workload", w.as_str().into()),
            ("backend", b.as_str().into()),
            ("threads", Json::U64(t)),
            ("wall_ns_median_run", wall_run.into()),
            ("wall_ns_median_base", wall_base.into()),
            ("wall_rel_delta", wall_rel.into()),
            ("wall_gated", (t == 1).into()),
            ("ok", ok.into()),
        ];
        fields.extend(counters.iter().map(|(k, v)| (k.as_str(), v.clone())));
        rows.push(Json::Obj(fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()));
    }

    // Service rows, matched by (scenario, threads). Same counterpart rule as the compute
    // rows: every run row needs a baseline twin, baseline-only rows are ignored (CI gates
    // a t=1 subset sweep).
    let service_of = |doc: &Json| -> Vec<Json> {
        doc.get("service").and_then(Json::as_array).map(<[Json]>::to_vec).unwrap_or_default()
    };
    let run_service = service_of(&run);
    let base_service = service_of(&base);
    let fnum = |rec: &Json, k: &str| -> Result<f64, String> {
        rec.get(k).and_then(Json::as_f64).ok_or(format!(
            "service record lacks a numeric `{k}` — regenerate BENCH_native.json with \
             this binary"
        ))
    };
    let mut service_rows: Vec<Json> = Vec::new();
    for rec in &run_service {
        let scenario = text(rec, "scenario")?;
        let t = num(rec, "threads")?;
        let id = format!("{scenario} t={t}");
        let Some(base_rec) = base_service.iter().find(|r| {
            r.get("scenario") == rec.get("scenario") && r.get("threads") == rec.get("threads")
        }) else {
            return Err(format!(
                "service row {id} has no baseline counterpart — the suite changed; \
                 regenerate BENCH_native.json"
            ));
        };

        let mut ok = true;
        let (sub_run, sub_base) = (num(rec, "submitted")?, num(base_rec, "submitted")?);
        if sub_run != sub_base {
            ok = false;
            regressions
                .push(format!("{id}: submitted {sub_run} vs baseline {sub_base} (gated exact)"));
        }
        let (completed, shed) = (num(rec, "completed")?, num(rec, "shed")?);
        if completed + shed != sub_run {
            ok = false;
            regressions.push(format!(
                "{id}: completed {completed} + shed {shed} != submitted {sub_run} \
                 (outcome partition broken)"
            ));
        }
        let wall_run = num(rec, "wall_ns_median")?;
        let wall_base = num(base_rec, "wall_ns_median")?;
        let wall_rel = if wall_base == 0 {
            0.0
        } else {
            (wall_run as f64 - wall_base as f64) / wall_base as f64
        };
        if t == 1 && wall_rel > gate.wall_rel_tol {
            ok = false;
            regressions.push(format!(
                "{id}: wall_ns_median {wall_run} vs baseline {wall_base} ({:+.1}% > +{:.0}%)",
                100.0 * wall_rel,
                100.0 * gate.wall_rel_tol
            ));
        }
        let shed_run = fnum(rec, "shed_rate")?;
        let shed_base = fnum(base_rec, "shed_rate")?;
        let bound = shed_base + gate.shed_slack;
        if shed_run > bound {
            ok = false;
            regressions.push(format!(
                "{id}: shed_rate {shed_run:.3} vs baseline {shed_base:.3} \
                 (bound {bound:.3} = base + {:.2})",
                gate.shed_slack
            ));
        }

        service_rows.push(obj([
            ("scenario", scenario.as_str().into()),
            ("threads", Json::U64(t)),
            ("wall_ns_median_run", wall_run.into()),
            ("wall_ns_median_base", wall_base.into()),
            ("wall_rel_delta", wall_rel.into()),
            ("wall_gated", (t == 1).into()),
            ("submitted_run", sub_run.into()),
            ("submitted_base", sub_base.into()),
            ("shed_rate_run", shed_run.into()),
            ("shed_rate_base", shed_base.into()),
            ("shed_rate_bound", bound.into()),
            ("ok", ok.into()),
        ]));
    }

    // The trace-overhead row, when both documents carry one. The *off* wall is the gated
    // number — it is what every untraced row pays, so a regression there means the
    // flight recorder leaked cost into the default path. The on-wall and the attribution
    // fractions are reported in the delta but not gated (opting in is allowed to cost).
    // A `null`/absent trace on either side skips the row, so a pre-trace baseline still
    // gates cleanly until it is regenerated.
    let trace_row = match (run.get("trace"), base.get("trace")) {
        (Some(run_tr @ Json::Obj(_)), Some(base_tr @ Json::Obj(_))) => {
            let mut ok = true;
            let id = "trace-overhead";
            let wall_run = num(run_tr, "wall_ns_off_median")?;
            let wall_base = num(base_tr, "wall_ns_off_median")?;
            let wall_rel = if wall_base == 0 {
                0.0
            } else {
                (wall_run as f64 - wall_base as f64) / wall_base as f64
            };
            if wall_rel > gate.wall_rel_tol {
                ok = false;
                regressions.push(format!(
                    "{id}: tracing-off wall_ns_off_median {wall_run} vs baseline {wall_base} \
                     ({:+.1}% > +{:.0}%)",
                    100.0 * wall_rel,
                    100.0 * gate.wall_rel_tol
                ));
            }
            let (jobs_run, jobs_base) = (num(run_tr, "jobs")?, num(base_tr, "jobs")?);
            if jobs_run != jobs_base {
                ok = false;
                regressions
                    .push(format!("{id}: jobs {jobs_run} vs baseline {jobs_base} (gated exact)"));
            }
            obj([
                ("workload", run_tr.get("workload").cloned().unwrap_or(Json::Null)),
                ("wall_ns_off_median_run", wall_run.into()),
                ("wall_ns_off_median_base", wall_base.into()),
                ("wall_rel_delta", wall_rel.into()),
                ("wall_ns_on_median_run", num(run_tr, "wall_ns_on_median")?.into()),
                ("overhead_rel_run", run_tr.get("overhead_rel").cloned().unwrap_or(Json::Null)),
                ("overhead_rel_base", base_tr.get("overhead_rel").cloned().unwrap_or(Json::Null)),
                ("jobs_run", jobs_run.into()),
                ("jobs_base", jobs_base.into()),
                ("ok", ok.into()),
            ])
        }
        _ => Json::Null,
    };

    // The sharded rows, matched by (workload, shards, threads_per_shard). Structure is
    // gated exactly — parts and fork counts are deterministic functions of the kernels,
    // and a nonzero redistributed count means workers died in a suite that injects no
    // faults. Walls (sharded and in-process) are reported, never gated: subprocess spawn
    // latency is exactly the kind of host noise the t>1 wall exemption exists for. A
    // baseline without a `sharded` key (predating the suite) skips these rows, like a
    // null baseline trace.
    let sharded_of = |doc: &Json| -> Option<Vec<Json>> {
        doc.get("sharded").and_then(Json::as_array).map(<[Json]>::to_vec)
    };
    let mut sharded_rows: Vec<Json> = Vec::new();
    if let (Some(run_sharded), Some(base_sharded)) = (sharded_of(&run), sharded_of(&base)) {
        for rec in &run_sharded {
            let w = text(rec, "workload")?;
            let (s, t) = (num(rec, "shards")?, num(rec, "threads_per_shard")?);
            let id = format!("sharded {w} s={s} t={t}");
            let Some(base_rec) = base_sharded.iter().find(|r| {
                r.get("workload") == rec.get("workload")
                    && r.get("shards") == rec.get("shards")
                    && r.get("threads_per_shard") == rec.get("threads_per_shard")
            }) else {
                return Err(format!(
                    "sharded row {id} has no baseline counterpart — the suite changed; \
                     regenerate BENCH_native.json"
                ));
            };

            let mut ok = true;
            for key in ["parts", "work_items"] {
                let (r, bse) = (num(rec, key)?, num(base_rec, key)?);
                if r != bse {
                    ok = false;
                    regressions.push(format!("{id}: {key} {r} vs baseline {bse} (gated exact)"));
                }
            }
            let redistributed = num(rec, "redistributed")?;
            if redistributed != 0 {
                ok = false;
                regressions.push(format!(
                    "{id}: redistributed {redistributed} != 0 — workers died during a \
                     fault-free bench run"
                ));
            }
            let wall_run = num(rec, "wall_ns_median")?;
            let wall_base = num(base_rec, "wall_ns_median")?;
            sharded_rows.push(obj([
                ("workload", w.as_str().into()),
                ("shards", Json::U64(s)),
                ("threads_per_shard", Json::U64(t)),
                ("wall_ns_median_run", wall_run.into()),
                ("wall_ns_median_base", wall_base.into()),
                ("wall_gated", false.into()),
                ("overhead_rel_run", rec.get("overhead_rel").cloned().unwrap_or(Json::Null)),
                ("overhead_rel_base", base_rec.get("overhead_rel").cloned().unwrap_or(Json::Null)),
                ("parts_run", num(rec, "parts")?.into()),
                ("work_items_run", num(rec, "work_items")?.into()),
                ("redistributed_run", redistributed.into()),
                ("ok", ok.into()),
            ]));
        }
    }

    let pass = regressions.is_empty();
    let delta = obj([
        ("schema", "rws-bench-delta/v1".into()),
        ("size", run.get("size").cloned().unwrap_or(Json::Null)),
        ("wall_rel_tol", gate.wall_rel_tol.into()),
        ("retry_factor", gate.retry_factor.into()),
        ("retry_slack", gate.retry_slack.into()),
        ("shed_slack", gate.shed_slack.into()),
        ("pass", pass.into()),
        (
            "regressions",
            Json::Arr(regressions.iter().map(|r| r.as_str().into()).collect::<Vec<_>>()),
        ),
        ("rows", rows.into()),
        ("service_rows", service_rows.into()),
        ("trace_row", trace_row),
        ("sharded_rows", sharded_rows.into()),
    ])
    .render();
    Ok((delta, pass))
}

/// Structural validation of a delta document emitted by [`gate_against`].
pub fn validate_delta(doc: &str) -> Result<(), String> {
    json::validate_with_keys(
        doc,
        &[
            "schema",
            "pass",
            "regressions",
            "rows",
            "service_rows",
            "trace_row",
            "sharded_rows",
            "wall_rel_tol",
        ],
    )
}

/// Summarize a run document as one trajectory row: the `threads = 1` `chaselev` median
/// wall per workload plus the `threads = 1` service throughputs (the numbers the gate
/// actually protects), stamped with `date` and a free-form `note`.
pub fn trajectory_row(run_doc: &str, date: &str, note: &str) -> Result<Json, String> {
    let run = json::parse(run_doc).map_err(|e| format!("run document: {e}"))?;
    let records =
        run.get("records").and_then(Json::as_array).ok_or("run document has no `records`")?;
    let mut walls: Vec<(String, Json)> = Vec::new();
    for rec in records {
        if rec.get("backend").and_then(Json::as_str) == Some("chaselev")
            && rec.get("threads").and_then(Json::as_u64) == Some(1)
        {
            let w = rec.get("workload").and_then(Json::as_str).ok_or("record lacks `workload`")?;
            let ns = rec.get("wall_ns_median").and_then(Json::as_u64).ok_or("record lacks wall")?;
            walls.push((w.to_string(), ns.into()));
        }
    }
    if walls.is_empty() {
        return Err("run document has no threads=1 chaselev rows to summarize".into());
    }
    let mut svc: Vec<(String, Json)> = Vec::new();
    for rec in run.get("service").and_then(Json::as_array).unwrap_or(&[]) {
        if rec.get("threads").and_then(Json::as_u64) == Some(1) {
            if let (Some(name), Some(jps)) = (
                rec.get("scenario").and_then(Json::as_str),
                rec.get("jobs_per_sec").and_then(Json::as_f64),
            ) {
                svc.push((name.to_string(), jps.into()));
            }
        }
    }
    let mut shd: Vec<(String, Json)> = Vec::new();
    for rec in run.get("sharded").and_then(Json::as_array).unwrap_or(&[]) {
        if let (Some(name), Some(rel)) = (
            rec.get("workload").and_then(Json::as_str),
            rec.get("overhead_rel").and_then(Json::as_f64),
        ) {
            shd.push((name.to_string(), rel.into()));
        }
    }
    let mut fields: Vec<(String, Json)> = vec![
        ("date".into(), date.into()),
        ("note".into(), note.into()),
        ("size".into(), run.get("size").cloned().unwrap_or(Json::Null)),
        ("t1_chaselev_wall_ns".into(), Json::Obj(walls)),
    ];
    // Rows predating the service suite simply lack this key; the history stays appendable.
    if !svc.is_empty() {
        fields.push(("t1_service_jobs_per_sec".into(), Json::Obj(svc)));
    }
    // Same for rows predating the sharded suite: the multi-process tax per workload.
    if !shd.is_empty() {
        fields.push(("sharded_overhead_rel".into(), Json::Obj(shd)));
    }
    Ok(Json::Obj(fields))
}

/// Append `row` to a trajectory document (schema `rws-bench-trajectory/v1`), creating the
/// document when `existing` is `None`. Returns the new document text.
pub fn append_trajectory(existing: Option<&str>, row: Json) -> Result<String, String> {
    let mut rows: Vec<Json> = match existing {
        None => Vec::new(),
        Some(doc) => {
            let parsed = json::parse(doc).map_err(|e| format!("trajectory document: {e}"))?;
            if parsed.get("schema").and_then(Json::as_str) != Some("rws-bench-trajectory/v1") {
                return Err(format!(
                    "trajectory document has schema {:?}, expected rws-bench-trajectory/v1",
                    parsed.get("schema")
                ));
            }
            parsed
                .get("rows")
                .and_then(Json::as_array)
                .map(<[Json]>::to_vec)
                .ok_or("trajectory document has no `rows` array")?
        }
    };
    rows.push(row);
    Ok(obj([("schema", "rws-bench-trajectory/v1".into()), ("rows", rows.into())]).render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(backend: &str, threads: usize, wall: u64) -> BenchRecord {
        BenchRecord {
            workload: "recursive-sum".into(),
            backend: backend.into(),
            threads,
            wall_ns_median: wall,
            wall_ns_min: wall - 10,
            steals: if threads == 1 { 0 } else { 5 },
            batch_steals: if threads == 1 { 0 } else { 2 },
            jobs: 50,
            steal_retries: if threads == 1 { 0 } else { 1 },
            parks: 2,
            allocs: 3,
            allocs_per_fork: 0.06,
        }
    }

    fn service_record(scenario: &str, threads: usize, wall: u64, shed: u64) -> ServiceBenchRecord {
        let submitted = 1000;
        ServiceBenchRecord {
            scenario: scenario.into(),
            admission: if shed == 0 { "block" } else { "shed" }.into(),
            threads,
            queue_capacity: 64,
            submitted,
            completed: submitted - shed,
            shed,
            wall_ns_median: wall,
            wall_ns_min: wall - 5,
            jobs_per_sec: (submitted - shed) as f64 * 1e9 / wall as f64,
            shed_rate: shed as f64 / submitted as f64,
            p99_queue_ns: 500,
            p99_service_ns: 700,
        }
    }

    fn tiny_records() -> Vec<BenchRecord> {
        vec![record("chaselev", 4, 100), record("simple", 4, 150)]
    }

    fn gate_records() -> Vec<BenchRecord> {
        vec![record("chaselev", 1, 1000), record("chaselev", 4, 800), record("simple", 1, 1500)]
    }

    #[test]
    fn json_emission_is_structurally_valid() {
        let cfg = BenchConfig::for_size(SizeClass::Smoke);
        let doc = to_json(&cfg, &tiny_records(), &[]);
        validate_json(&doc).expect("emitted JSON must validate");
        assert!(doc.contains("\"speedup\": 1.500000"));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_json("{").is_err());
        assert!(validate_json("{}").is_err(), "required keys missing");
        assert!(validate_json("{\"schema\": \"x\", \"records\": [}]").is_err());
        let cfg = BenchConfig::for_size(SizeClass::Smoke);
        let good = to_json(&cfg, &tiny_records(), &[]);
        let truncated = &good[..good.len() - 4];
        assert!(validate_json(truncated).is_err());
    }

    #[test]
    fn comparisons_pair_backends() {
        let cmps = comparisons(&tiny_records());
        assert_eq!(cmps.len(), 1);
        let (w, t, cl, simple, speedup) = &cmps[0];
        assert_eq!((w.as_str(), *t, *cl, *simple), ("recursive-sum", 4, 100, 150));
        assert!((speedup - 1.5).abs() < 1e-9);
    }

    #[test]
    fn check_against_accepts_matching_structure_and_catches_drops() {
        let cfg = BenchConfig::for_size(SizeClass::Smoke);
        let full_cfg = BenchConfig::for_size(SizeClass::Full);
        let records = tiny_records();
        let baseline = to_json(&full_cfg, &records, &[]);

        // A structurally identical run (different values are fine) passes.
        let mut faster = records.clone();
        for r in &mut faster {
            r.wall_ns_median /= 2;
        }
        check_against(&to_json(&cfg, &faster, &[]), &baseline).expect("matching structure");

        // Dropping a whole (workload, backend) combination fails.
        let dropped: Vec<BenchRecord> =
            records.iter().filter(|r| r.backend != "simple").cloned().collect();
        let err = check_against(&to_json(&cfg, &dropped, &[]), &baseline).unwrap_err();
        assert!(err.contains("silently dropped"), "{err}");

        // Dropping one thread-count row of one combination breaks count uniformity.
        let mut uneven = records.clone();
        uneven.extend(records.iter().map(|r| BenchRecord { threads: 8, ..r.clone() }));
        uneven.remove(1); // "simple" now has 1 row where "chaselev" has 2
        let err = check_against(&to_json(&cfg, &uneven, &[]), &baseline).unwrap_err();
        assert!(err.contains("thread-count row"), "{err}");

        // A drifted record schema (missing field) fails even though the JSON validates.
        let mut missing_field = to_json(&cfg, &records, &[]);
        missing_field = missing_field.replacen("      \"parks\": 2,\n", "", 1);
        rws_lab::json::validate(&missing_field).expect("still well-formed JSON");
        let err = check_against(&missing_field, &baseline).unwrap_err();
        assert!(err.contains("field set"), "{err}");

        // A different schema tag fails.
        let other_tag = baseline.replacen("rws-bench-native/v2", "rws-bench-native/v3", 1);
        assert!(check_against(&other_tag, &baseline).unwrap_err().contains("schema"));
    }

    #[test]
    fn check_against_covers_the_service_rows() {
        let cfg = BenchConfig::for_size(SizeClass::Smoke);
        let full_cfg = BenchConfig::for_size(SizeClass::Full);
        let records = tiny_records();
        let service = vec![
            service_record("service-steady", 1, 10_000, 0),
            service_record("service-overload", 1, 20_000, 500),
        ];
        let baseline = to_json(&full_cfg, &records, &service);

        // Same structure, different values: passes. A run sweeping fewer thread counts
        // also passes — only scenario presence is required.
        check_against(&to_json(&cfg, &records, &service), &baseline).expect("matching");
        let subset = vec![service[0].clone(), service[1].clone()];
        check_against(&to_json(&cfg, &records, &subset), &baseline).expect("subset sweep");

        // Dropping a scenario fails.
        let dropped = vec![service[0].clone()];
        let err = check_against(&to_json(&cfg, &records, &dropped), &baseline).unwrap_err();
        assert!(err.contains("service-overload") && err.contains("silently dropped"), "{err}");

        // A drifted service-record field set fails.
        let mut missing = to_json(&cfg, &records, &service);
        missing = missing.replacen("      \"p99_queue_ns\": 500,\n", "", 1);
        rws_lab::json::validate(&missing).expect("still well-formed JSON");
        let err = check_against(&missing, &baseline).unwrap_err();
        assert!(err.contains("service record") && err.contains("field set"), "{err}");
    }

    fn trace_record(off: u64, on: u64) -> TraceBenchRecord {
        TraceBenchRecord {
            workload: "recursive-sum".into(),
            threads: 1,
            capacity: TRACE_BENCH_CAPACITY,
            wall_ns_off_median: off,
            wall_ns_on_median: on,
            overhead_rel: (on as f64 - off as f64) / off as f64,
            jobs: 511,
            events_recorded: 1022,
            events_dropped: 0,
            busy_frac: 0.95,
            steal_frac: 0.0,
            park_frac: 0.0,
            overhead_frac: 0.05,
        }
    }

    #[test]
    fn check_against_is_forward_compatible_with_extended_runs() {
        let cfg = BenchConfig::for_size(SizeClass::Smoke);
        let records = tiny_records();
        let service = vec![service_record("service-steady", 1, 10_000, 0)];
        let baseline = to_json(&cfg, &records, &service);

        // A run emitted by a newer binary: an extra top-level section, an extra field on
        // every record and service row, and a measured trace object where the baseline has
        // null. All of it must be ignored — the baseline's structure is still fully there.
        let extended = to_json_full(&cfg, &records, &service, Some(&trace_record(1000, 1100)), &[])
            .replacen(
                "\"schema\": \"rws-bench-native/v2\",",
                "\"schema\": \"rws-bench-native/v2\",\n  \"future_section\": 1,",
                1,
            )
            .replace("\"parks\": 2,", "\"parks\": 2,\n      \"future_counter\": 7,")
            .replace("\"p99_queue_ns\": 500,", "\"p99_queue_ns\": 500,\n      \"p99_spare\": 1,");
        rws_lab::json::validate(&extended).expect("still well-formed JSON");
        check_against(&extended, &baseline).expect("run-side extras are forward-compatible");

        // The reverse direction is NOT tolerated: a baseline promising more than the run
        // delivers means the run dropped something.
        let err = check_against(&baseline, &extended).unwrap_err();
        assert!(err.contains("future_section") && err.contains("missing from the run"), "{err}");
    }

    #[test]
    fn trace_overhead_row_measures_both_modes() {
        let cfg = BenchConfig { size: SizeClass::Smoke, threads: vec![1], repeats: 1, warmup: 1 };
        let t = run_trace_overhead(&cfg);
        assert_eq!(t.threads, 1);
        assert!(t.jobs > 0, "the workload must fork");
        assert!(t.wall_ns_off_median > 0 && t.wall_ns_on_median > 0);
        assert!(t.events_recorded > 0, "the traced pool must record events");
        for frac in [t.busy_frac, t.steal_frac, t.park_frac, t.overhead_frac] {
            assert!((0.0..=1.0).contains(&frac), "attribution fraction out of range: {frac}");
        }
        let doc = to_json_full(&cfg, &tiny_records(), &[], Some(&t), &[]);
        validate_json(&doc).expect("document with a trace row must validate");
        assert!(doc.contains("\"wall_ns_off_median\""), "{doc}");
    }

    #[test]
    fn gate_covers_the_trace_row() {
        let cfg = BenchConfig::for_size(SizeClass::Full);
        let baseline =
            to_json_full(&cfg, &gate_records(), &[], Some(&trace_record(1000, 1100)), &[]);

        // Identical documents pass and the delta carries the populated trace row.
        let (delta, pass) = gate_against(&baseline, &baseline, &GateConfig::default()).unwrap();
        assert!(pass, "identical trace rows must pass:\n{delta}");
        assert!(delta.contains("\"trace_row\"") && delta.contains("overhead_rel_run"), "{delta}");

        // A tracing-off wall regression past the tolerance trips the gate: the flight
        // recorder leaked cost into the default path.
        let slow = to_json_full(&cfg, &gate_records(), &[], Some(&trace_record(1500, 1600)), &[]);
        let (delta, pass) = gate_against(&slow, &baseline, &GateConfig::default()).unwrap();
        assert!(!pass, "a tracing-off slowdown must trip the gate");
        assert!(delta.contains("trace-overhead: tracing-off wall_ns_off_median 1500"), "{delta}");

        // A fork-count drift under tracing trips the gate exactly.
        let mut drifted = trace_record(1000, 1100);
        drifted.jobs += 1;
        let doc = to_json_full(&cfg, &gate_records(), &[], Some(&drifted), &[]);
        let (delta, pass) = gate_against(&doc, &baseline, &GateConfig::default()).unwrap();
        assert!(!pass, "a traced jobs drift must trip the gate");
        assert!(delta.contains("trace-overhead: jobs 512"), "{delta}");

        // A slower tracing-ON wall alone is reported, not gated: opting in may cost.
        let pricier =
            to_json_full(&cfg, &gate_records(), &[], Some(&trace_record(1000, 3000)), &[]);
        let (_, pass) = gate_against(&pricier, &baseline, &GateConfig::default()).unwrap();
        assert!(pass, "the tracing-on wall is not gated");

        // A pre-trace baseline (trace: null) skips the row instead of failing.
        let old_baseline = to_json(&cfg, &gate_records(), &[]);
        let (delta, pass) = gate_against(&baseline, &old_baseline, &GateConfig::default()).unwrap();
        assert!(pass, "a null baseline trace skips the row");
        assert!(delta.contains("\"trace_row\": null"), "{delta}");
    }

    #[test]
    fn smoke_suite_runs_end_to_end_on_both_backends() {
        // The CI smoke path in miniature: tiny sizes, one thread count, validated output.
        let cfg = BenchConfig { size: SizeClass::Smoke, threads: vec![2], repeats: 1, warmup: 1 };
        let records = run_suite(&cfg, || 0);
        assert_eq!(records.len(), 11 * 2, "11 workloads x 2 backends");
        assert!(records.iter().all(|r| r.jobs > 0), "every run must execute forks");
        let doc = to_json(&cfg, &records, &[]);
        validate_json(&doc).expect("smoke suite JSON must validate");
    }

    #[test]
    fn gate_passes_on_an_identical_run() {
        let cfg = BenchConfig::for_size(SizeClass::Full);
        let doc = to_json(&cfg, &gate_records(), &[]);
        let (delta, pass) = gate_against(&doc, &doc, &GateConfig::default()).expect("comparable");
        assert!(pass, "identical documents must pass:\n{delta}");
        validate_delta(&delta).expect("delta document must validate");
        assert!(delta.contains("\"pass\": true"));
    }

    #[test]
    fn gate_trips_on_a_single_thread_slowdown_but_ignores_multithread_walls() {
        let cfg = BenchConfig::for_size(SizeClass::Full);
        let baseline = to_json(&cfg, &gate_records(), &[]);

        // +50% on the t=1 chaselev wall: over the 35% tolerance, must fail.
        let mut slow = gate_records();
        slow[0].wall_ns_median = 1500;
        let (delta, pass) =
            gate_against(&to_json(&cfg, &slow, &[]), &baseline, &GateConfig::default()).unwrap();
        assert!(!pass, "an injected t=1 slowdown must trip the gate");
        assert!(delta.contains("wall_ns_median 1500"), "{delta}");

        // A *bigger* slowdown on the t=4 row alone: walls are not gated there.
        let mut slow_mt = gate_records();
        slow_mt[1].wall_ns_median = 80_000;
        let (_, pass) =
            gate_against(&to_json(&cfg, &slow_mt, &[]), &baseline, &GateConfig::default()).unwrap();
        assert!(pass, "threads > 1 walls are not gated (1-CPU-host caveat)");

        // The tolerance is configurable: +50% passes a 60% gate.
        let loose = GateConfig { wall_rel_tol: 0.6, ..GateConfig::default() };
        let (_, pass) = gate_against(&to_json(&cfg, &slow, &[]), &baseline, &loose).unwrap();
        assert!(pass);
    }

    #[test]
    fn gate_trips_on_deterministic_counter_drift() {
        let cfg = BenchConfig::for_size(SizeClass::Full);
        let baseline = to_json(&cfg, &gate_records(), &[]);

        // jobs is deterministic at every thread count.
        let mut more_jobs = gate_records();
        more_jobs[1].jobs += 1;
        let (delta, pass) =
            gate_against(&to_json(&cfg, &more_jobs, &[]), &baseline, &GateConfig::default())
                .unwrap();
        assert!(!pass, "a jobs drift must trip the gate even at threads > 1");
        assert!(delta.contains("jobs 51"), "{delta}");

        // allocs is gated exactly at t=1 only.
        let mut more_allocs = gate_records();
        more_allocs[0].allocs += 2;
        let (_, pass) =
            gate_against(&to_json(&cfg, &more_allocs, &[]), &baseline, &GateConfig::default())
                .unwrap();
        assert!(!pass, "a t=1 allocation regression must trip the gate");
    }

    #[test]
    fn gate_bounds_multithread_retries_and_tolerates_noise_below_the_bound() {
        let cfg = BenchConfig::for_size(SizeClass::Full);
        let baseline = to_json(&cfg, &gate_records(), &[]);
        // Baseline t=4 retries is 1; bound is 1*16 + 256 = 272.
        let mut noisy = gate_records();
        noisy[1].steal_retries = 200;
        let (_, pass) =
            gate_against(&to_json(&cfg, &noisy, &[]), &baseline, &GateConfig::default()).unwrap();
        assert!(pass, "scheduling noise below the bound passes");
        let mut storm = gate_records();
        storm[1].steal_retries = 100_000;
        let (delta, pass) =
            gate_against(&to_json(&cfg, &storm, &[]), &baseline, &GateConfig::default()).unwrap();
        assert!(!pass, "a retry explosion must trip the gate");
        assert!(delta.contains("steal_retries 100000"), "{delta}");
    }

    #[test]
    fn gate_covers_service_rows() {
        let cfg = BenchConfig::for_size(SizeClass::Full);
        let service = vec![
            service_record("service-steady", 1, 10_000, 0),
            service_record("service-overload", 1, 20_000, 500),
        ];
        let baseline = to_json(&cfg, &gate_records(), &service);

        // Identical documents pass, and the delta carries the service rows.
        let (delta, pass) = gate_against(&baseline, &baseline, &GateConfig::default()).unwrap();
        assert!(pass, "identical service rows must pass:\n{delta}");
        assert!(delta.contains("service_rows") && delta.contains("service-overload"), "{delta}");

        // A t=1 service wall slowdown past the tolerance trips the gate.
        let mut slow = service.clone();
        slow[0].wall_ns_median = 15_000;
        let (delta, pass) =
            gate_against(&to_json(&cfg, &gate_records(), &slow), &baseline, &GateConfig::default())
                .unwrap();
        assert!(!pass, "a service t=1 slowdown must trip the gate");
        assert!(delta.contains("service-steady t=1: wall_ns_median 15000"), "{delta}");

        // `submitted` is exact: the scenario fixes it, so any drift is a harness bug.
        let mut drift = service.clone();
        drift[0].submitted += 1;
        let (delta, pass) = gate_against(
            &to_json(&cfg, &gate_records(), &drift),
            &baseline,
            &GateConfig::default(),
        )
        .unwrap();
        assert!(!pass, "a submitted drift must trip the gate");
        assert!(delta.contains("submitted 1001"), "{delta}");

        // A broken outcome partition (completed + shed != submitted) trips the gate.
        let mut torn = service.clone();
        torn[1].completed -= 1;
        let (delta, pass) =
            gate_against(&to_json(&cfg, &gate_records(), &torn), &baseline, &GateConfig::default())
                .unwrap();
        assert!(!pass, "a torn outcome partition must trip the gate");
        assert!(delta.contains("outcome partition broken"), "{delta}");

        // Shed-rate noise inside the slack passes; an explosion past it fails.
        let shed_variant = |shed: u64| {
            let mut v = service.clone();
            v[1].shed = shed;
            v[1].completed = v[1].submitted - shed;
            v[1].shed_rate = shed as f64 / v[1].submitted as f64;
            to_json(&cfg, &gate_records(), &v)
        };
        let (_, pass) =
            gate_against(&shed_variant(650), &baseline, &GateConfig::default()).unwrap();
        assert!(pass, "shed rate 0.65 is inside base 0.50 + slack 0.20");
        let (delta, pass) =
            gate_against(&shed_variant(900), &baseline, &GateConfig::default()).unwrap();
        assert!(!pass, "shed rate 0.90 must trip the bound");
        assert!(delta.contains("shed_rate 0.900"), "{delta}");
        // Shedding *less* than the baseline is never a regression.
        let (_, pass) = gate_against(&shed_variant(0), &baseline, &GateConfig::default()).unwrap();
        assert!(pass, "a lower shed rate passes");

        // A run service row with no baseline counterpart means the suite changed.
        let grown = vec![service[0].clone(), service_record("service-new", 1, 5_000, 0)];
        let err = gate_against(
            &to_json(&cfg, &gate_records(), &grown),
            &baseline,
            &GateConfig::default(),
        )
        .unwrap_err();
        assert!(err.contains("service-new") && err.contains("regenerate"), "{err}");
    }

    #[test]
    fn service_suite_runs_end_to_end() {
        let cfg = BenchConfig { size: SizeClass::Smoke, threads: vec![1], repeats: 1, warmup: 1 };
        let service = run_service_suite(&cfg);
        assert_eq!(service.len(), 2, "2 scenarios x 1 thread count");
        let steady = service.iter().find(|r| r.scenario == "service-steady").unwrap();
        assert_eq!(steady.shed, 0, "Block admission never sheds");
        assert_eq!(steady.completed, steady.submitted);
        assert!(steady.jobs_per_sec > 0.0);
        let overload = service.iter().find(|r| r.scenario == "service-overload").unwrap();
        assert_eq!(overload.submitted, 4 * overload.queue_capacity as u64);
        assert_eq!(overload.completed + overload.shed, overload.submitted);
        let doc = to_json(&cfg, &[], &service);
        validate_json(&doc).expect("service suite JSON must validate");
    }

    #[test]
    fn gate_requires_comparable_documents() {
        let full = BenchConfig::for_size(SizeClass::Full);
        let smoke = BenchConfig::for_size(SizeClass::Smoke);
        let records = gate_records();
        let baseline = to_json(&full, &records, &[]);

        // Size classes must match.
        let err = gate_against(&to_json(&smoke, &records, &[]), &baseline, &GateConfig::default())
            .unwrap_err();
        assert!(err.contains("size classes differ"), "{err}");

        // A run row with no baseline counterpart means the suite grew.
        let mut extra = records.clone();
        extra.push(BenchRecord { workload: "new-workload".into(), ..records[0].clone() });
        let err = gate_against(&to_json(&full, &extra, &[]), &baseline, &GateConfig::default())
            .unwrap_err();
        assert!(err.contains("regenerate"), "{err}");

        // The reverse — gating a subset sweep against the full baseline — is fine.
        let subset = vec![records[0].clone()];
        let (_, pass) =
            gate_against(&to_json(&full, &subset, &[]), &baseline, &GateConfig::default()).unwrap();
        assert!(pass);
    }

    fn sharded_bench_record(workload: &str, wall: u64) -> ShardedBenchRecord {
        ShardedBenchRecord {
            workload: workload.into(),
            shards: 2,
            threads_per_shard: 1,
            parts: 8,
            wall_ns_median: wall,
            wall_ns_min: wall.saturating_sub(10),
            inproc_wall_ns_median: wall / 2,
            overhead_rel: 1.0,
            work_items: 120,
            redistributed: 0,
        }
    }

    fn doc_with_sharded(cfg: &BenchConfig, sharded: &[ShardedBenchRecord]) -> String {
        to_json_full(cfg, &gate_records(), &[], None, sharded)
    }

    #[test]
    fn gate_covers_sharded_rows_structure_exact_walls_ungated() {
        let cfg = BenchConfig::for_size(SizeClass::Full);
        let sharded = vec![sharded_bench_record("matmul", 1000), sharded_bench_record("spmv", 900)];
        let baseline = doc_with_sharded(&cfg, &sharded);

        // Identical documents pass; the delta carries the sharded rows.
        let (delta, pass) = gate_against(&baseline, &baseline, &GateConfig::default()).unwrap();
        assert!(pass, "identical sharded rows must pass:\n{delta}");
        validate_delta(&delta).expect("delta must validate");
        assert!(
            delta.contains("\"sharded_rows\"") && delta.contains("overhead_rel_run"),
            "{delta}"
        );

        // Walls are never gated, however bad: subprocess spawn latency is host noise.
        let mut slow = sharded.clone();
        slow[0].wall_ns_median = 1_000_000;
        slow[0].overhead_rel = 999.0;
        let (_, pass) =
            gate_against(&doc_with_sharded(&cfg, &slow), &baseline, &GateConfig::default())
                .unwrap();
        assert!(pass, "sharded walls are reported, not gated");

        // The deterministic structure is exact: a fork-count drift trips the gate.
        let mut drift = sharded.clone();
        drift[1].work_items += 1;
        let (delta, pass) =
            gate_against(&doc_with_sharded(&cfg, &drift), &baseline, &GateConfig::default())
                .unwrap();
        assert!(!pass, "a sharded work_items drift must trip the gate");
        assert!(delta.contains("sharded spmv s=2 t=1: work_items 121"), "{delta}");

        // A nonzero redistributed count means workers died in a fault-free run.
        let mut died = sharded.clone();
        died[0].redistributed = 3;
        let (delta, pass) =
            gate_against(&doc_with_sharded(&cfg, &died), &baseline, &GateConfig::default())
                .unwrap();
        assert!(!pass, "redistribution during a bench run must trip the gate");
        assert!(delta.contains("redistributed 3 != 0"), "{delta}");

        // A run row with no baseline counterpart means the suite changed.
        let grown =
            vec![sharded[0].clone(), sharded[1].clone(), sharded_bench_record("prefix", 500)];
        let err = gate_against(&doc_with_sharded(&cfg, &grown), &baseline, &GateConfig::default())
            .unwrap_err();
        assert!(err.contains("sharded prefix") && err.contains("regenerate"), "{err}");

        // A baseline predating the sharded suite (no `sharded` key at all) skips the rows.
        let old_baseline = baseline.replacen("\"sharded\": [", "\"presharded\": [", 1);
        let (delta, pass) =
            gate_against(&doc_with_sharded(&cfg, &sharded), &old_baseline, &GateConfig::default())
                .unwrap();
        assert!(pass, "a pre-sharded baseline skips the rows");
        assert!(delta.contains("\"sharded_rows\": []"), "{delta}");
    }

    #[test]
    fn check_against_covers_the_sharded_rows() {
        let cfg = BenchConfig::for_size(SizeClass::Smoke);
        let sharded = vec![sharded_bench_record("matmul", 1000), sharded_bench_record("spmv", 900)];
        // tiny_records() sweeps uniformly, so the compute-row checks stay out of the way.
        let mk = |shd: &[ShardedBenchRecord]| to_json_full(&cfg, &tiny_records(), &[], None, shd);
        let baseline = mk(&sharded);

        // Same structure, different values: passes.
        let mut faster = sharded.clone();
        faster[0].wall_ns_median = 500;
        check_against(&mk(&faster), &baseline).expect("matching structure");

        // Dropping a sharded workload fails.
        let dropped = vec![sharded[0].clone()];
        let err = check_against(&mk(&dropped), &baseline).unwrap_err();
        assert!(err.contains("spmv") && err.contains("silently dropped"), "{err}");

        // A drifted sharded-record field set fails.
        let mut missing = mk(&sharded);
        missing = missing.replacen("      \"parts\": 8,\n", "", 1);
        rws_lab::json::validate(&missing).expect("still well-formed JSON");
        let err = check_against(&missing, &baseline).unwrap_err();
        assert!(err.contains("sharded record") && err.contains("field set"), "{err}");
    }

    #[test]
    fn sharded_suite_runs_end_to_end() {
        // Subprocess-spawning smoke run. Needs the shard-worker binary: a workspace-level
        // `cargo test` builds it; a bare `cargo test -p rws-bench` needs
        // `cargo build --bins -p rws-shard` first.
        let cfg = BenchConfig { size: SizeClass::Smoke, threads: vec![2], repeats: 1, warmup: 1 };
        let sharded = run_sharded_suite(&cfg);
        assert_eq!(sharded.len(), 2, "matmul + spmv");
        for r in &sharded {
            assert_eq!((r.shards, r.threads_per_shard), (2, 1));
            assert!(r.parts > 0 && r.work_items > 0);
            assert_eq!(r.redistributed, 0);
            assert!(r.wall_ns_median > 0 && r.inproc_wall_ns_median > 0);
        }
        let doc = to_json_full(&cfg, &tiny_records(), &[], None, &sharded);
        validate_json(&doc).expect("document with sharded rows must validate");
        assert!(doc.contains("\"inproc_wall_ns_median\""), "{doc}");
    }

    #[test]
    fn trajectory_rows_accumulate() {
        let cfg = BenchConfig::for_size(SizeClass::Full);
        let service = vec![service_record("service-steady", 1, 10_000, 0)];
        let doc = to_json_full(
            &cfg,
            &gate_records(),
            &service,
            None,
            &[sharded_bench_record("matmul", 1000)],
        );
        let row = trajectory_row(&doc, "2026-08-08", "first entry").expect("summarizable");
        assert!(
            row.render().contains("t1_service_jobs_per_sec"),
            "t=1 service throughput joins the trajectory row"
        );
        assert!(
            row.render().contains("sharded_overhead_rel"),
            "the multi-process tax joins the trajectory row"
        );
        let t1 = append_trajectory(None, row.clone()).expect("fresh document");
        json::validate(&t1).expect("well-formed");
        assert!(t1.contains("rws-bench-trajectory/v1") && t1.contains("first entry"));
        let t2 = append_trajectory(Some(&t1), row).expect("append");
        let parsed = json::parse(&t2).unwrap();
        assert_eq!(parsed.get("rows").and_then(Json::as_array).map(<[Json]>::len), Some(2));
        // Appending to a non-trajectory document is rejected.
        assert!(append_trajectory(Some(&doc), trajectory_row(&doc, "d", "n").unwrap()).is_err());
    }
}
