//! Criterion bench: the HBP algorithm suite under the RWS simulator (experiments E13–E17).

use criterion::{criterion_group, criterion_main, Criterion};
use rws_algos::fft::{fft_computation, FftConfig};
use rws_algos::sort::{sort_computation, SortConfig};
use rws_algos::transpose::transpose_bi_computation;
use rws_bench::{default_machine, run_on};

fn bench_suite(c: &mut Criterion) {
    let machine = default_machine(8);
    let mut group = c.benchmark_group("hbp_suite_rws_p8");
    group.sample_size(10);
    let sort = sort_computation(&SortConfig::new(1024));
    group.bench_function("hbp_mergesort_1024", |b| b.iter(|| run_on(&sort, &machine, 5)));
    let fft = fft_computation(&FftConfig::new(1024));
    group.bench_function("fft_1024", |b| b.iter(|| run_on(&fft, &machine, 5)));
    let transpose = transpose_bi_computation(32, 4);
    group.bench_function("transpose_32", |b| b.iter(|| run_on(&transpose, &machine, 5)));
    group.finish();
}

criterion_group!(benches, bench_suite);
criterion_main!(benches);
