//! Criterion bench: sleep-protocol backoff schedule sweep behind the `SleepBackoff`
//! defaults (`spin_rounds = 6`, `spin_cap_shift = 5`, `yield_rounds = 3`).
//!
//! The workload is a bursty fork-join tree: a recursive sum over a slice whose sequential
//! leaves are deliberately small, so workers repeatedly drain their deques and hit the
//! idle path between bursts. A schedule that parks too eagerly pays a futex wake on every
//! burst; one that spins too long burns the (shared) core the producer needs. The sweep
//! brackets the default with park-immediately, yield-only, and spin-heavy schedules so the
//! chosen constants are a measured trade-off, not a guess.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rws_runtime::{join, SleepBackoff, ThreadPool, ThreadPoolBuilder};

const LEN: usize = 1 << 14;
const LEAF: usize = 64;

fn recursive_sum(data: &[u64]) -> u64 {
    if data.len() <= LEAF {
        return data.iter().sum();
    }
    let (lo, hi) = data.split_at(data.len() / 2);
    let (a, b) = join(|| recursive_sum(lo), || recursive_sum(hi));
    a + b
}

/// One bursty iteration: the tree runs to completion, then the pool goes idle so every
/// worker walks the spin → yield → park ladder before the next burst arrives.
fn burst(pool: &ThreadPool, data: &'static [u64]) -> u64 {
    pool.install(|| recursive_sum(data))
}

fn bench_sleep_backoff(c: &mut Criterion) {
    // `install` requires a 'static closure; leak the input once for the process lifetime.
    let data: &'static [u64] = Vec::leak((0..LEN as u64).collect());
    let expected: u64 = data.iter().sum();
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get().clamp(2, 8));

    let schedules: &[(&str, SleepBackoff)] = &[
        ("park-immediately", SleepBackoff { spin_rounds: 0, spin_cap_shift: 0, yield_rounds: 0 }),
        ("yield-only", SleepBackoff { spin_rounds: 0, spin_cap_shift: 0, yield_rounds: 8 }),
        ("default-6-5-3", SleepBackoff::default()),
        ("spin-heavy", SleepBackoff { spin_rounds: 12, spin_cap_shift: 8, yield_rounds: 6 }),
    ];

    let mut group = c.benchmark_group("sleep_backoff");
    group.sample_size(10);
    for (name, backoff) in schedules {
        let pool = ThreadPoolBuilder::new().threads(threads).backoff(*backoff).build();
        group.bench_with_input(BenchmarkId::from_parameter(name), &pool, |b, pool| {
            b.iter(|| {
                let got = burst(pool, data);
                assert_eq!(got, expected);
                got
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sleep_backoff);
criterion_main!(benches);
