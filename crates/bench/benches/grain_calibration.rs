//! Criterion bench: the grain sweep behind `par_iter`'s `MIN_SEQ_ELEMENTS = 64` floor.
//!
//! A cheap per-element `map_reduce` (one multiply-add per element) is the worst case for
//! scheduling overhead: at grain 1 every element is its own fork, so the runtime's
//! per-job cost dominates the arithmetic outright. The sweep runs the same reduction at
//! explicit grains bracketing the floor, plus the adaptive default, so the floor's value
//! is pinned to the measured knee of the curve — below ~64 elements a leaf costs less
//! than the fork that schedules it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rws_runtime::{ParSliceExt, ThreadPool};

const LEN: usize = 1 << 16;

fn bench_grain_calibration(c: &mut Criterion) {
    // `install` requires a 'static closure; leak the input once for the process lifetime.
    let data: &'static [u64] = Vec::leak((0..LEN as u64).collect());
    let expected: u64 = data.iter().map(|&x| x * 3 + 1).sum();
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get().clamp(2, 8));
    let pool = ThreadPool::new(threads);

    let mut group = c.benchmark_group("grain_calibration");
    group.sample_size(10);
    for grain in [1usize, 4, 16, 64, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(grain), &grain, |b, &grain| {
            b.iter(|| {
                let got = pool.install(move || {
                    data.par_iter().with_grain(grain).map_reduce(|&x| x * 3 + 1, |a, b| a + b, 0)
                });
                assert_eq!(got, expected);
                got
            });
        });
    }
    // The adaptive default (no explicit grain): `adaptive_grain` with the floor applied.
    group.bench_function("adaptive-floor-64", |b| {
        b.iter(|| {
            let got = pool.install(|| data.par_iter().map_reduce(|&x| x * 3 + 1, |a, b| a + b, 0));
            assert_eq!(got, expected);
            got
        });
    });
    group.finish();
}

criterion_group!(benches, bench_grain_calibration);
criterion_main!(benches);
