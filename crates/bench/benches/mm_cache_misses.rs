//! Criterion bench: the two matrix-multiply variants under the RWS simulator (experiments
//! E1/E2/E11/E12). Reported wall time is simulator throughput; the quantities of interest
//! (steals, misses) are printed by the `experiments` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rws_algos::matmul::{matmul_computation, MatMulConfig, MmVariant};
use rws_bench::{default_machine, run_on};

fn bench_mm(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_rws");
    group.sample_size(10);
    for (name, variant) in [
        ("depth_n_limited", MmVariant::DepthNLimitedAccess),
        ("depth_log2n", MmVariant::DepthLog2N),
    ] {
        let comp = matmul_computation(&MatMulConfig { n: 16, base: 4, variant });
        let machine = default_machine(4);
        group.bench_with_input(BenchmarkId::new(name, 16), &machine, |b, machine| {
            b.iter(|| run_on(&comp, machine, 3));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mm);
criterion_main!(benches);
