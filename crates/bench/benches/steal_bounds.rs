//! Criterion bench: scheduler throughput and steal counts for the BP workload (prefix sums)
//! across processor counts — the workload behind experiments E8/E9/E13.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rws_algos::prefix::{prefix_sums_computation, PrefixConfig};
use rws_bench::{default_machine, run_on};

fn bench_steal_bounds(c: &mut Criterion) {
    let comp = prefix_sums_computation(&PrefixConfig::new(4096));
    let mut group = c.benchmark_group("prefix_sums_rws");
    group.sample_size(10);
    for p in [1usize, 4, 8] {
        let machine = default_machine(p);
        group.bench_with_input(BenchmarkId::from_parameter(p), &machine, |b, machine| {
            b.iter(|| run_on(&comp, machine, 7));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_steal_bounds);
criterion_main!(benches);
