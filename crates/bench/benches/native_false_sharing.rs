//! Criterion bench: real-hardware false sharing (experiment E19) — identical per-worker
//! counter increments with packed vs cache-line-padded layouts, run on the native
//! work-stealing pool.

use criterion::{criterion_group, criterion_main, Criterion};
use rws_runtime::padding::Counters;
use rws_runtime::{PaddedCounters, ThreadPool, UnpaddedCounters};
use std::sync::Arc;

const ITERS: u64 = 500_000;

fn hammer(counters: Arc<dyn Counters>, pool: &ThreadPool, threads: usize) {
    let mut done = Vec::new();
    for w in 0..threads {
        let c = Arc::clone(&counters);
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        pool.spawn(move || {
            for _ in 0..ITERS {
                c.add(w, 1);
            }
            let _ = tx.send(());
        });
        done.push(rx);
    }
    for rx in done {
        let _ = rx.recv();
    }
}

fn bench_false_sharing(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8);
    let pool = ThreadPool::new(threads);
    let mut group = c.benchmark_group("native_false_sharing");
    group.sample_size(10);
    group.bench_function("unpadded", |b| {
        b.iter(|| hammer(Arc::new(UnpaddedCounters::new(threads)), &pool, threads));
    });
    group.bench_function("padded", |b| {
        b.iter(|| hammer(Arc::new(PaddedCounters::new(threads)), &pool, threads));
    });
    group.finish();
}

criterion_group!(benches, bench_false_sharing);
criterion_main!(benches);
