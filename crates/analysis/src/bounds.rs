//! The paper's general bounds: steal counts (Theorems 5.1, 6.2, 6.3), block delay
//! (Lemmas 4.4, 4.5), cache misses as a function of steals (Lemmas 3.1, 4.6, 4.7) and the
//! end-to-end runtime bound (Theorem 6.4, Corollary 6.2).

/// Machine parameters used by the formulas (mirrors `rws_machine::MachineConfig` but keeps
/// this crate dependency-light and floating-point).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Params {
    /// Number of processors `p`.
    pub p: f64,
    /// Cache size `M` in words.
    pub m: f64,
    /// Block size `B` in words.
    pub b_words: f64,
    /// Cache-miss cost `b`.
    pub miss_cost: f64,
    /// Steal cost `s`.
    pub steal_cost: f64,
}

impl Params {
    /// Convenience constructor.
    pub fn new(p: usize, m: u64, b_words: u64, miss_cost: u64, steal_cost: u64) -> Self {
        Params {
            p: p as f64,
            m: m as f64,
            b_words: b_words as f64,
            miss_cost: miss_cost as f64,
            steal_cost: steal_cost as f64,
        }
    }
}

fn log2(x: f64) -> f64 {
    x.max(2.0).log2()
}

/// `h(t)` for a general series-parallel computation under Theorem 5.1:
/// `h(t) = O((b/s · E + 1) · T∞)` where `E` is the per-node miss bound.
pub fn h_root_general(t_inf: f64, e_bound: f64, params: &Params) -> f64 {
    (1.0 + params.miss_cost / params.steal_cost * e_bound) * t_inf
}

/// Theorem 5.1: expected/high-probability number of successful steals
/// `S = O(p · h(t) · (1 + a))`.
pub fn steal_bound_general(t_inf: f64, e_bound: f64, a: f64, params: &Params) -> f64 {
    params.p * h_root_general(t_inf, e_bound, params) * (1.0 + a)
}

/// Theorem 5.1 (second part): time spent on steals `O(p · s · h(t) · (1 + a))`.
pub fn steal_time_bound_general(t_inf: f64, e_bound: f64, a: f64, params: &Params) -> f64 {
    params.steal_cost * steal_bound_general(t_inf, e_bound, a, params)
}

/// Theorem 6.1 / Lemmas 6.2, 6.6, 6.9: `h(t)` for a BP computation of size `n`:
/// `O((b+s)/s · log n + b/s · B)` — the improvement over the general bound's `B·log n` term.
pub fn h_root_bp(n: f64, params: &Params) -> f64 {
    let Params { b_words, miss_cost: b, steal_cost: s, .. } = *params;
    (b + s) / s * log2(n) + b / s * b_words.min(n)
}

/// Theorem 6.2: steal bound for BP / HBP computations, `O(p · h(t) · (1 + a))`.
pub fn steal_bound_hbp(h_root: f64, a: f64, params: &Params) -> f64 {
    params.p * h_root * (1.0 + a)
}

/// Theorem 6.3(i): `h(t)` for a Type-2 HBP algorithm with one collection of recursive calls
/// (`c = 1`) and shrink factor such that `s*(n, B)` iterations reach `B`.
pub fn h_root_hbp_c1(t_inf: f64, n: f64, s_star: f64, params: &Params) -> f64 {
    let Params { b_words, miss_cost: b, steal_cost: s, .. } = *params;
    (b + s) / s * t_inf + b / s * b_words.min(n) * s_star.max(1.0)
}

/// Theorem 6.3(ii): `c = 2`, `s(n) = √n` (the FFT / sample-sort recursion):
/// `h(t) = O((b+s)/s · T∞ + b/s · B · log n / log B)`.
pub fn h_root_hbp_c2_sqrt(t_inf: f64, n: f64, params: &Params) -> f64 {
    let Params { b_words, miss_cost: b, steal_cost: s, .. } = *params;
    (b + s) / s * t_inf + b / s * b_words * (log2(n) / log2(b_words)).max(1.0)
}

/// Theorem 6.3(iii): `c = 2`, `s(n) = n/4` (the depth-`n` matrix-multiply recursion on input
/// size `n²`): `h(t) = O((b+s)/s · T∞ + b/s · √(n·B))`.
pub fn h_root_hbp_c2_quarter(t_inf: f64, n: f64, params: &Params) -> f64 {
    let Params { b_words, miss_cost: b, steal_cost: s, .. } = *params;
    (b + s) / s * t_inf + b / s * (n * b_words).sqrt()
}

/// Lemma 4.4: the bound `Y(|τ|, B)` on the number of transfers of a single execution-stack
/// block during the execution of a task of size `size`, for an exactly-linear-space-bounded
/// algorithm with `c` collections of recursive calls. For `s(n) <= (1-γ)n/c` this is
/// `O(min(c·B, |τ|))`.
pub fn y_block_delay(size: f64, c: f64, params: &Params) -> f64 {
    (c * params.b_words).min(size)
}

/// Lemma 4.5 (and the per-steal design principle): total block delay of a Hierarchical Tree
/// Algorithm that undergoes `s_steals` steals is `O(S · B)`.
pub fn block_delay_bound(s_steals: f64, params: &Params) -> f64 {
    s_steals * params.b_words
}

/// Round-boundary block handoff of the Section 7 iterated-round algorithms (list ranking,
/// connected components): each of the `rounds` sequenced passes reads the `state_words` its
/// predecessor wrote wherever that round's leaves happened to execute, so every round
/// boundary can transfer up to `state_words / B` blocks between processors *regardless of
/// the computation's own steal count*. The paper accounts for this by costing each
/// iteration as a fresh primitive (`O(log n)` times the primitive's cost); the
/// per-computation `O(S·B)` block-delay envelope of Lemma 4.5 does not include it, so
/// checks over iterated-round workloads add this term explicitly. Zero on one processor
/// (nothing to hand off).
pub fn iterated_round_handoff(rounds: f64, state_words: f64, params: &Params) -> f64 {
    if params.p <= 1.0 {
        0.0
    } else {
        rounds * state_words / params.b_words
    }
}

/// Lemma 3.1 / Corollaries 3.1, 3.2: cache misses of the matrix-multiply algorithms with `S`
/// steals: `O(n³/(B·√M) + S^{1/3}·n²/B + S)`.
pub fn mm_cache_misses(n: f64, s_steals: f64, params: &Params) -> f64 {
    let seq = n.powi(3) / (params.b_words * params.m.sqrt());
    seq + s_steals.cbrt() * n * n / params.b_words + s_steals
}

/// The sequential cache-miss bound of the matrix-multiply algorithms, `Q = O(n³/(B√M))`.
pub fn mm_sequential_cache_misses(n: f64, params: &Params) -> f64 {
    n.powi(3) / (params.b_words * params.m.sqrt())
}

/// Lemma 4.6: RM→BI conversion with `S` steals incurs `O(n²/B + n·√S)` cache misses.
pub fn rm_to_bi_cache_misses(n: f64, s_steals: f64, params: &Params) -> f64 {
    n * n / params.b_words + n * s_steals.sqrt()
}

/// Lemma 4.7: the log²-depth BI→RM conversion with `S` steals incurs `O((n²/B)·log S)` cache
/// misses.
pub fn bi_to_rm_cache_misses(n: f64, s_steals: f64, params: &Params) -> f64 {
    n * n / params.b_words * log2(s_steals + 2.0)
}

/// Theorem 6.4: the runtime bound
/// `O( W/p + b·Q/p + b·C(S,n)/p + (S/p)(s + b·B) )`.
pub fn runtime_bound(w: f64, q: f64, c_extra: f64, s_steals: f64, params: &Params) -> f64 {
    let Params { p, b_words, miss_cost: b, steal_cost: s, .. } = *params;
    (w + b * q + b * c_extra + s_steals * (s + b * b_words)) / p
}

/// Corollary 6.2: the execution achieves optimal Θ(p) speedup when `s = Θ(b)` and
/// `C(S,n) + S·B = O(Q)`. Returns the ratio `(C + S·B) / Q`; values `O(1)` mean the parallel
/// caching overhead is dominated by the sequential cache misses.
pub fn optimality_ratio(q: f64, c_extra: f64, s_steals: f64, params: &Params) -> f64 {
    if q <= 0.0 {
        return f64::INFINITY;
    }
    (c_extra + s_steals * params.b_words) / q
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params::new(8, 4096, 8, 4, 8)
    }

    #[test]
    fn general_bound_grows_with_processors_and_depth() {
        let p = params();
        let base = steal_bound_general(100.0, 8.0, 1.0, &p);
        let more_procs = steal_bound_general(100.0, 8.0, 1.0, &Params { p: 16.0, ..p });
        let deeper = steal_bound_general(200.0, 8.0, 1.0, &p);
        assert!(more_procs > base);
        assert!(deeper > base);
        assert!((more_procs / base - 2.0).abs() < 1e-9, "linear in p");
        assert!((deeper / base - 2.0).abs() < 1e-9, "linear in T∞");
    }

    #[test]
    fn bp_bound_beats_general_bound_for_large_b() {
        // For a BP computation, E = O(B); the general bound pays B·log n while the HBP bound
        // pays B + log n.
        let p = Params::new(8, 65536, 64, 4, 8);
        let n = 1_000_000.0;
        let t_inf = log2(n);
        let general = steal_bound_general(t_inf, p.b_words, 1.0, &p);
        let improved = steal_bound_hbp(h_root_bp(n, &p), 1.0, &p);
        assert!(
            improved < general / 3.0,
            "the Section 6 bound must be substantially smaller: {improved} vs {general}"
        );
    }

    #[test]
    fn hbp_c1_and_c2_formulas_are_ordered_sensibly() {
        let p = params();
        // For the same T∞ and n, the sqrt-shrink recursion has a smaller additive term than
        // the quarter-shrink one (B·log n / log B vs sqrt(nB)) for large n.
        let n = 1u64 << 20;
        let sqrt_h = h_root_hbp_c2_sqrt(100.0, n as f64, &p);
        let quarter_h = h_root_hbp_c2_quarter(100.0, n as f64, &p);
        assert!(sqrt_h < quarter_h);
    }

    #[test]
    fn y_delay_saturates_at_c_times_b() {
        let p = params();
        assert_eq!(y_block_delay(3.0, 2.0, &p), 3.0);
        assert_eq!(y_block_delay(1000.0, 2.0, &p), 16.0);
        assert_eq!(block_delay_bound(10.0, &p), 80.0);
    }

    #[test]
    fn mm_cache_misses_reduce_to_sequential_without_steals() {
        let p = params();
        let n = 256.0;
        let with_zero = mm_cache_misses(n, 0.0, &p);
        let seq = mm_sequential_cache_misses(n, &p);
        assert!((with_zero - seq).abs() < 1e-9);
        assert!(mm_cache_misses(n, 1000.0, &p) > seq);
    }

    #[test]
    fn conversion_bounds_behave() {
        let p = params();
        assert!(rm_to_bi_cache_misses(64.0, 0.0, &p) >= 64.0 * 64.0 / 8.0);
        assert!(rm_to_bi_cache_misses(64.0, 100.0, &p) > rm_to_bi_cache_misses(64.0, 0.0, &p));
        assert!(bi_to_rm_cache_misses(64.0, 100.0, &p) > bi_to_rm_cache_misses(64.0, 1.0, &p));
    }

    #[test]
    fn runtime_bound_scales_inversely_with_p() {
        let p8 = params();
        let p16 = Params { p: 16.0, ..p8 };
        let t8 = runtime_bound(1e6, 1e4, 1e3, 100.0, &p8);
        let t16 = runtime_bound(1e6, 1e4, 1e3, 100.0, &p16);
        assert!((t8 / t16 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn optimality_ratio_flags_excessive_steal_overhead() {
        let p = params();
        assert!(optimality_ratio(1e6, 1e3, 10.0, &p) < 0.01);
        assert!(optimality_ratio(1e3, 1e6, 1e6, &p) > 100.0);
        assert!(optimality_ratio(0.0, 1.0, 1.0, &p).is_infinite());
    }
}
