//! Per-algorithm predictions (Lemma 7.1 and Theorem 7.1): steal counts, cache-miss and
//! block-delay envelopes for the concrete algorithms built in `rws-algos`.

use crate::bounds::{self, Params};

fn log2(x: f64) -> f64 {
    x.max(2.0).log2()
}

/// Lemma 7.1 (depth-`n` matrix multiply): `S = O(p·((b+s)/s·n + b/s·n·√B)·(1+a))`.
pub fn mm_depth_n_steals(n: f64, a: f64, params: &Params) -> f64 {
    let Params { p, b_words, miss_cost: b, steal_cost: s, .. } = *params;
    p * ((b + s) / s * n + b / s * n * b_words.sqrt()) * (1.0 + a)
}

/// Lemma 7.1 (depth-`log² n` matrix multiply):
/// `S = O(p·((b+s)/s·log²n + b/s·B·log n)·(1+a))`.
pub fn mm_depth_log2_steals(n: f64, a: f64, params: &Params) -> f64 {
    let Params { p, b_words, miss_cost: b, steal_cost: s, .. } = *params;
    let l = log2(n);
    p * ((b + s) / s * l * l + b / s * b_words * l) * (1.0 + a)
}

/// Lemma 7.1: the depth-`n` algorithm is optimal (linear speedup) when
/// `p ≤ n² / (B^{1/2}·M^{3/2})` and `M ≥ B²`.
pub fn mm_depth_n_optimal(n: f64, params: &Params) -> bool {
    params.m >= params.b_words * params.b_words
        && params.p <= n * n / (params.b_words.sqrt() * params.m.powf(1.5))
}

/// Lemma 7.1: the depth-`log² n` algorithm is optimal when
/// `p·(log²n + B·log n) ≤ n³ / M^{3/2}` and `M ≥ B²`.
pub fn mm_depth_log2_optimal(n: f64, params: &Params) -> bool {
    let l = log2(n);
    params.m >= params.b_words * params.b_words
        && params.p * (l * l + params.b_words * l) <= n.powi(3) / params.m.powf(1.5)
}

/// Theorem 7.1(i) (BP algorithms, e.g. prefix sums):
/// `S = O(p·((b+s)/s·log n + b/s·B)·(1+a))`, `C(S,n) = O(S)`.
pub fn bp_steals(n: f64, a: f64, params: &Params) -> f64 {
    bounds::steal_bound_hbp(bounds::h_root_bp(n, params), a, params)
}

/// Theorem 7.1(i): the BP cache/block overhead is dominated by the sequential cache misses
/// when `p·B·(log n + B) ≤ n`.
pub fn bp_optimal(n: f64, params: &Params) -> bool {
    params.p * params.b_words * (log2(n) + params.b_words) <= n
}

/// Theorem 7.1(ii) (matrix transpose / RM→BI conversion): the BP bound applied to `n²`
/// elements.
pub fn transpose_steals(n: f64, a: f64, params: &Params) -> f64 {
    bp_steals(n * n, a, params)
}

/// Theorem 7.1(iii)/(iv) (sorting and FFT with the √n-decomposition):
/// `S = O(p·((b+s)/s·log n·log log n + b/s·B·log n / log B)·(1+a))`.
pub fn sort_fft_steals(n: f64, a: f64, params: &Params) -> f64 {
    let Params { p, b_words, miss_cost: b, steal_cost: s, .. } = *params;
    let l = log2(n);
    p * ((b + s) / s * l * log2(l) + b / s * b_words * l / log2(b_words)) * (1.0 + a)
}

/// Steal prediction for the HBP merge sort actually built in `rws-algos` (c = 1 collection,
/// `s(n) = n/2`, `T∞ = O(log² n)`): Theorem 6.3(i) gives
/// `h(t) = O((b+s)/s·log²n + b/s·B·log(n/B))`.
pub fn mergesort_steals(n: f64, a: f64, params: &Params) -> f64 {
    let Params { p, b_words, miss_cost: b, steal_cost: s, .. } = *params;
    let l = log2(n);
    let s_star = log2(n / b_words.max(1.0)).max(1.0);
    p * ((b + s) / s * l * l + b / s * b_words * s_star) * (1.0 + a)
}

/// Section 7: list ranking iterates a sort `O(log n)` times, so its bounds are at most
/// `log n` times the sort's.
pub fn list_ranking_steals(n: f64, a: f64, params: &Params) -> f64 {
    sort_fft_steals(n, a, params) * log2(n)
}

/// Section 7: connected components iterates list ranking `O(log n)` times.
pub fn connected_components_steals(n: f64, a: f64, params: &Params) -> f64 {
    list_ranking_steals(n, a, params) * log2(n)
}

/// Space usage of the three matrix-multiply variants (Section 3, "Space Usage"):
/// in-place `O(n²)`, limited-access depth-`n` `O(n² log p)`, depth-`log² n` `O(p^{1/3} n²)`.
pub fn mm_space_words(n: f64, variant_limited: bool, variant_log2: bool, params: &Params) -> f64 {
    if variant_log2 {
        params.p.cbrt() * n * n
    } else if variant_limited {
        n * n * log2(params.p).max(1.0)
    } else {
        n * n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params::new(8, 4096, 8, 4, 8)
    }

    #[test]
    fn depth_log2_steals_far_fewer_than_depth_n() {
        let p = params();
        for n in [256.0, 1024.0, 4096.0] {
            let deep = mm_depth_n_steals(n, 1.0, &p);
            let shallow = mm_depth_log2_steals(n, 1.0, &p);
            assert!(
                shallow * 4.0 < deep,
                "log²-depth MM must steal far less: {shallow} vs {deep} at n={n}"
            );
        }
    }

    #[test]
    fn steal_predictions_grow_with_p_and_n() {
        let p = params();
        let p2 = Params { p: 16.0, ..p };
        assert!(mm_depth_n_steals(128.0, 1.0, &p2) > mm_depth_n_steals(128.0, 1.0, &p));
        assert!(bp_steals(1_000_000.0, 1.0, &p) > bp_steals(1_000.0, 1.0, &p));
        assert!(sort_fft_steals((1u64 << 20) as f64, 1.0, &p) > sort_fft_steals(1024.0, 1.0, &p));
    }

    #[test]
    fn iterated_algorithms_multiply_by_log_factors() {
        let p = params();
        let n = 4096.0;
        let sort = sort_fft_steals(n, 1.0, &p);
        let lr = list_ranking_steals(n, 1.0, &p);
        let cc = connected_components_steals(n, 1.0, &p);
        assert!(lr > sort && cc > lr);
        assert!((lr / sort - log2(n)).abs() < 1e-9);
    }

    #[test]
    fn optimality_regions_shrink_with_more_processors() {
        let small = Params::new(2, 1024, 8, 4, 8);
        let huge = Params::new(1 << 20, 1024, 8, 4, 8);
        assert!(mm_depth_n_optimal(512.0, &small));
        assert!(!mm_depth_n_optimal(512.0, &huge));
        assert!(bp_optimal((1u64 << 20) as f64, &small));
        assert!(!bp_optimal(256.0, &huge));
    }

    #[test]
    fn tall_cache_assumption_is_checked() {
        // M < B² must never be declared optimal.
        let squat = Params::new(2, 16, 8, 4, 8);
        assert!(!mm_depth_n_optimal((1u64 << 20) as f64, &squat));
        assert!(!mm_depth_log2_optimal((1u64 << 20) as f64, &squat));
    }

    #[test]
    fn space_usage_ordering() {
        let p = params();
        let n = 256.0;
        let in_place = mm_space_words(n, false, false, &p);
        let limited = mm_space_words(n, true, false, &p);
        let log2v = mm_space_words(n, true, true, &p);
        assert!(in_place <= limited);
        assert!(in_place <= log2v);
    }

    #[test]
    fn mergesort_prediction_tracks_its_own_recursion() {
        let p = params();
        // The built merge sort has T∞ = Θ(log² n); its prediction must exceed the paper's
        // sample-sort prediction (log n log log n) for large n.
        let n = 1 << 20;
        assert!(mergesort_steals(n as f64, 1.0, &p) > sort_fft_steals(n as f64, 1.0, &p));
    }
}
