//! Structured pass/fail verdicts: the paper's bounds as an executable regression suite.
//!
//! The bound functions in [`crate::bounds`] and [`crate::predictions`] return `f64`
//! predictions with the asymptotic constants taken as 1. A [`BoundCheck`] compares a
//! measured quantity against such a prediction under an explicit slack factor (the elided
//! constant) and records a machine-checkable [`Verdict`], so experiment harnesses can gate
//! on the theory instead of printing tables for a human to eyeball.

use std::fmt;

/// The outcome of comparing a measurement against a bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The measurement is within `slack × bound`.
    Pass,
    /// The measurement exceeds `slack × bound` (or one of the quantities was not finite).
    Fail,
}

impl Verdict {
    /// Lower-case label as it appears in reports (`pass` / `fail`).
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Fail => "fail",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One executed bound comparison: `measured ≤ slack × bound`?
///
/// `slack` stands in for the constant the asymptotic bound elides; it is part of the check's
/// declaration (a scenario file can tighten or relax it) and is recorded in the result so a
/// report always shows what was actually asserted.
#[derive(Clone, Debug, PartialEq)]
pub struct BoundCheck {
    /// What was checked (e.g. `steals`, `block-misses`, `runtime`).
    pub name: String,
    /// The measured quantity.
    pub measured: f64,
    /// The predicted bound (constants taken as 1).
    pub bound: f64,
    /// The allowed constant factor: the check passes iff `measured ≤ slack × bound`.
    pub slack: f64,
    /// The outcome, fixed at construction.
    pub verdict: Verdict,
}

impl BoundCheck {
    /// Compare `measured` against `slack × bound`. Non-finite inputs (a NaN bound from a
    /// degenerate parameter combination, an infinite measurement) always fail: a check that
    /// cannot be evaluated must not silently pass.
    pub fn new(name: impl Into<String>, measured: f64, bound: f64, slack: f64) -> Self {
        let finite = measured.is_finite() && bound.is_finite() && slack.is_finite();
        let verdict =
            if finite && measured <= slack * bound { Verdict::Pass } else { Verdict::Fail };
        BoundCheck { name: name.into(), measured, bound, slack, verdict }
    }

    /// Whether the check passed.
    pub fn passed(&self) -> bool {
        self.verdict == Verdict::Pass
    }

    /// `measured / (slack × bound)` — how much of the allowed envelope was used. Values
    /// `≤ 1` pass; `∞` when the allowed envelope is zero but the measurement is not.
    pub fn ratio(&self) -> f64 {
        let allowed = self.slack * self.bound;
        if allowed == 0.0 {
            return if self.measured == 0.0 { 0.0 } else { f64::INFINITY };
        }
        self.measured / allowed
    }

    /// One-line human-readable form.
    pub fn summary(&self) -> String {
        format!(
            "[{}] {}: measured {:.1} vs {:.1} × bound {:.1} (ratio {:.3})",
            self.verdict.label(),
            self.name,
            self.measured,
            self.slack,
            self.bound,
            self.ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_and_fail_follow_the_envelope() {
        assert!(BoundCheck::new("steals", 10.0, 5.0, 4.0).passed());
        assert!(!BoundCheck::new("steals", 21.0, 5.0, 4.0).passed());
        // Boundary: exactly slack × bound passes.
        assert!(BoundCheck::new("steals", 20.0, 5.0, 4.0).passed());
    }

    #[test]
    fn zero_bounds_and_non_finite_inputs() {
        let both_zero = BoundCheck::new("block-misses", 0.0, 0.0, 8.0);
        assert!(both_zero.passed());
        assert_eq!(both_zero.ratio(), 0.0);
        let exceeded = BoundCheck::new("block-misses", 1.0, 0.0, 8.0);
        assert!(!exceeded.passed());
        assert!(exceeded.ratio().is_infinite());
        assert!(!BoundCheck::new("runtime", f64::NAN, 1.0, 1.0).passed());
        assert!(!BoundCheck::new("runtime", 1.0, f64::NAN, 1.0).passed());
        assert!(!BoundCheck::new("runtime", 1.0, f64::INFINITY, 1.0).passed());
    }

    #[test]
    fn summary_and_labels() {
        let c = BoundCheck::new("runtime", 2.0, 4.0, 2.0);
        assert_eq!(c.verdict, Verdict::Pass);
        assert_eq!(c.verdict.label(), "pass");
        assert_eq!(format!("{}", Verdict::Fail), "fail");
        let s = c.summary();
        assert!(s.contains("[pass] runtime"), "{s}");
        assert!((c.ratio() - 0.25).abs() < 1e-12);
    }
}
