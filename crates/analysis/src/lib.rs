//! # rws-analysis
//!
//! Closed-form evaluations of the paper's bounds, used by the experiment harness to compare
//! measured quantities against predictions. All functions return `f64` values with the
//! asymptotic constants taken as 1 — experiments compare *shapes* (scaling exponents, who
//! wins, crossovers), not absolute values.
//!
//! The [`verdict`] module turns such comparisons into structured pass/fail results
//! ([`BoundCheck`]): the form the `rws-lab` scenario subsystem gates CI on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod predictions;
pub mod verdict;

pub use bounds::*;
pub use predictions::*;
pub use verdict::{BoundCheck, Verdict};
