//! Property tests for the bound formulas: every bound is nonnegative on sane parameters and
//! monotone in the obvious directions (nondecreasing in `T∞`, `p`, the miss cost, the steal
//! count, …). A typo in a formula — a dropped term, an inverted ratio — shifts shapes in
//! exactly these directions, so these properties keep a silent formula regression from
//! passing every downstream `BoundCheck`.
//!
//! Seeded `SmallRng` loops stand in for proptest (the workspace is offline-vendored), so
//! failures are reproducible bit for bit.

use rand::{rngs::SmallRng, Rng, SeedableRng};
use rws_analysis as analysis;
use rws_analysis::Params;

const CASES: usize = 400;

/// A random parameter set that satisfies the paper's standing assumptions: `p ≥ 1`,
/// `B ≥ 2`, `M ≥ B` (usually `≥ B²`, the tall-cache case), `b ≥ 1`, `s ≥ b`.
fn random_params(rng: &mut SmallRng) -> Params {
    let p = rng.gen_range(1usize..128);
    let b_words = 1u64 << rng.gen_range(1u32..7); // 2..=64
    let m = b_words * b_words * (1 << rng.gen_range(0u32..6));
    let miss_cost = rng.gen_range(1u64..32);
    let steal_cost = miss_cost + rng.gen_range(0u64..64);
    Params::new(p, m, b_words, miss_cost, steal_cost)
}

/// All the closed-form bounds evaluated on one (params, instance) draw, by name.
fn all_bounds(
    params: &Params,
    t_inf: f64,
    e: f64,
    a: f64,
    n: f64,
    s: f64,
) -> Vec<(&'static str, f64)> {
    let s_star = (n.log2() - params.b_words.log2()).max(1.0);
    vec![
        ("h_root_general", analysis::h_root_general(t_inf, e, params)),
        ("steal_bound_general", analysis::steal_bound_general(t_inf, e, a, params)),
        ("steal_time_bound_general", analysis::steal_time_bound_general(t_inf, e, a, params)),
        ("h_root_bp", analysis::h_root_bp(n, params)),
        ("steal_bound_hbp", analysis::steal_bound_hbp(analysis::h_root_bp(n, params), a, params)),
        ("h_root_hbp_c1", analysis::h_root_hbp_c1(t_inf, n, s_star, params)),
        ("h_root_hbp_c2_sqrt", analysis::h_root_hbp_c2_sqrt(t_inf, n, params)),
        ("h_root_hbp_c2_quarter", analysis::h_root_hbp_c2_quarter(t_inf, n, params)),
        ("y_block_delay", analysis::y_block_delay(n, 2.0, params)),
        ("block_delay_bound", analysis::block_delay_bound(s, params)),
        (
            "iterated_round_handoff",
            analysis::iterated_round_handoff(n.log2().ceil(), 2.0 * n, params),
        ),
        ("mm_cache_misses", analysis::mm_cache_misses(n, s, params)),
        ("mm_sequential_cache_misses", analysis::mm_sequential_cache_misses(n, params)),
        ("rm_to_bi_cache_misses", analysis::rm_to_bi_cache_misses(n, s, params)),
        ("bi_to_rm_cache_misses", analysis::bi_to_rm_cache_misses(n, s, params)),
        ("runtime_bound", analysis::runtime_bound(n * n, n, s, s, params)),
        ("mm_depth_n_steals", analysis::mm_depth_n_steals(n, a, params)),
        ("mm_depth_log2_steals", analysis::mm_depth_log2_steals(n, a, params)),
        ("bp_steals", analysis::bp_steals(n, a, params)),
        ("transpose_steals", analysis::transpose_steals(n, a, params)),
        ("sort_fft_steals", analysis::sort_fft_steals(n, a, params)),
        ("mergesort_steals", analysis::mergesort_steals(n, a, params)),
        ("list_ranking_steals", analysis::list_ranking_steals(n, a, params)),
        ("connected_components_steals", analysis::connected_components_steals(n, a, params)),
        ("mm_space_words(in-place)", analysis::mm_space_words(n, false, false, params)),
        ("mm_space_words(limited)", analysis::mm_space_words(n, true, false, params)),
        ("mm_space_words(log2)", analysis::mm_space_words(n, true, true, params)),
    ]
}

#[test]
fn every_bound_is_nonnegative_and_finite() {
    let mut rng = SmallRng::seed_from_u64(0xB0_07_2D);
    for _ in 0..CASES {
        let params = random_params(&mut rng);
        let t_inf = rng.gen_range(1.0f64..1e6);
        let e = rng.gen_range(0.0f64..256.0);
        let a = rng.gen_range(0.0f64..4.0);
        let n = rng.gen_range(2.0f64..1e7);
        let s = rng.gen_range(0.0f64..1e6);
        for (name, v) in all_bounds(&params, t_inf, e, a, n, s) {
            assert!(
                v.is_finite() && v >= 0.0,
                "{name} must be finite and nonnegative, got {v} for {params:?}, \
                 t_inf={t_inf}, e={e}, a={a}, n={n}, s={s}"
            );
        }
    }
}

/// Assert `f(hi) ≥ f(lo) - eps` with a tiny relative tolerance for float noise.
fn assert_nondecreasing(name: &str, lo: f64, hi: f64, context: &str) {
    let eps = 1e-9 * lo.abs().max(1.0);
    assert!(hi >= lo - eps, "{name} must be nondecreasing in {context}: {lo} -> {hi}");
}

#[test]
fn steal_bounds_are_monotone_in_depth_processors_and_miss_cost() {
    let mut rng = SmallRng::seed_from_u64(0x51_EA_15);
    for _ in 0..CASES {
        let params = random_params(&mut rng);
        let t_inf = rng.gen_range(1.0f64..1e5);
        let e = rng.gen_range(0.0f64..64.0);
        let a = rng.gen_range(0.0f64..2.0);
        let grow = 1.0 + rng.gen_range(0.1f64..8.0);

        // Nondecreasing in T∞ (a deeper computation can only allow more steals).
        assert_nondecreasing(
            "steal_bound_general",
            analysis::steal_bound_general(t_inf, e, a, &params),
            analysis::steal_bound_general(t_inf * grow, e, a, &params),
            "T_inf",
        );
        // Nondecreasing (in fact linear) in p.
        let more_procs = Params { p: params.p * grow, ..params };
        assert_nondecreasing(
            "steal_bound_general",
            analysis::steal_bound_general(t_inf, e, a, &params),
            analysis::steal_bound_general(t_inf, e, a, &more_procs),
            "p",
        );
        // Nondecreasing in the miss cost b (steals get charged more cache refill work).
        // Keep s fixed and >= b on both sides.
        let costlier = Params {
            miss_cost: params.miss_cost * grow,
            steal_cost: params.steal_cost * grow + params.miss_cost * grow,
            ..params
        };
        let base = Params { steal_cost: costlier.steal_cost, ..params };
        assert_nondecreasing(
            "steal_bound_general",
            analysis::steal_bound_general(t_inf, e, a, &base),
            analysis::steal_bound_general(t_inf, e, a, &costlier),
            "miss cost",
        );
        // And in the burst parameter a.
        assert_nondecreasing(
            "steal_bound_general",
            analysis::steal_bound_general(t_inf, e, a, &params),
            analysis::steal_bound_general(t_inf, e, a + grow, &params),
            "a",
        );
    }
}

#[test]
fn per_algorithm_predictions_are_monotone_in_p_and_n() {
    let mut rng = SmallRng::seed_from_u64(0xA165);
    type Pred = fn(f64, f64, &Params) -> f64;
    let predictions: &[(&str, Pred)] = &[
        ("bp_steals", analysis::bp_steals),
        ("transpose_steals", analysis::transpose_steals),
        ("sort_fft_steals", analysis::sort_fft_steals),
        ("mergesort_steals", analysis::mergesort_steals),
        ("list_ranking_steals", analysis::list_ranking_steals),
        ("connected_components_steals", analysis::connected_components_steals),
        ("mm_depth_n_steals", analysis::mm_depth_n_steals),
        ("mm_depth_log2_steals", analysis::mm_depth_log2_steals),
    ];
    for _ in 0..CASES {
        let params = random_params(&mut rng);
        // n comfortably above the log2 clamp and the B-saturation knees, so monotonicity in
        // n is the formulas' real asymptotic behavior, not clamp plateaus.
        let n = rng.gen_range(256.0f64..1e7);
        let a = rng.gen_range(0.0f64..2.0);
        let grow = 1.0 + rng.gen_range(0.1f64..8.0);
        let more_procs = Params { p: params.p * grow, ..params };
        for (name, f) in predictions {
            assert_nondecreasing(name, f(n, a, &params), f(n * grow, a, &params), "n");
            assert_nondecreasing(name, f(n, a, &params), f(n, a, &more_procs), "p");
        }
    }
}

#[test]
fn miss_and_delay_envelopes_are_monotone_in_steals_and_costs() {
    let mut rng = SmallRng::seed_from_u64(0xDE1A);
    for _ in 0..CASES {
        let params = random_params(&mut rng);
        let n = rng.gen_range(2.0f64..1e5);
        let s = rng.gen_range(0.0f64..1e6);
        let grow = 1.0 + rng.gen_range(0.1f64..8.0);

        // More steals can only mean more cache misses / block delay.
        for (name, f) in [
            ("mm_cache_misses", analysis::mm_cache_misses as fn(f64, f64, &Params) -> f64),
            ("rm_to_bi_cache_misses", analysis::rm_to_bi_cache_misses),
            ("bi_to_rm_cache_misses", analysis::bi_to_rm_cache_misses),
        ] {
            assert_nondecreasing(name, f(n, s, &params), f(n, s * grow + 1.0, &params), "S");
            assert_nondecreasing(name, f(n, s, &params), f(n * grow, s, &params), "n");
        }
        assert_nondecreasing(
            "block_delay_bound",
            analysis::block_delay_bound(s, &params),
            analysis::block_delay_bound(s * grow + 1.0, &params),
            "S",
        );

        // The runtime bound: nondecreasing in W, Q, C, S and the miss cost; nonincreasing
        // in p (fixed totals spread over more processors).
        let (w, q, c) =
            (rng.gen_range(1.0f64..1e8), rng.gen_range(0.0f64..1e6), rng.gen_range(0.0f64..1e6));
        let base = analysis::runtime_bound(w, q, c, s, &params);
        assert_nondecreasing(
            "runtime_bound",
            base,
            analysis::runtime_bound(w * grow, q, c, s, &params),
            "W",
        );
        assert_nondecreasing(
            "runtime_bound",
            base,
            analysis::runtime_bound(w, q * grow + 1.0, c, s, &params),
            "Q",
        );
        assert_nondecreasing(
            "runtime_bound",
            base,
            analysis::runtime_bound(w, q, c * grow + 1.0, s, &params),
            "C",
        );
        assert_nondecreasing(
            "runtime_bound",
            base,
            analysis::runtime_bound(w, q, c, s * grow + 1.0, &params),
            "S",
        );
        let costlier = Params {
            miss_cost: params.miss_cost * grow,
            steal_cost: params.steal_cost * grow + params.miss_cost * grow,
            ..params
        };
        let base_aligned = Params { steal_cost: costlier.steal_cost, ..params };
        assert_nondecreasing(
            "runtime_bound",
            analysis::runtime_bound(w, q, c, s, &base_aligned),
            analysis::runtime_bound(w, q, c, s, &costlier),
            "miss cost",
        );
        let more_procs = Params { p: params.p * grow, ..params };
        let spread = analysis::runtime_bound(w, q, c, s, &more_procs);
        assert!(
            spread <= base * (1.0 + 1e-9),
            "runtime_bound must not grow with p: {base} -> {spread}"
        );
    }
}

#[test]
fn bound_checks_gate_on_the_envelope_for_random_inputs() {
    // The verdict layer itself: for random (measured, bound, slack) triples the verdict is
    // exactly the envelope comparison, so no formula typo can flip a verdict silently.
    let mut rng = SmallRng::seed_from_u64(0xC0_FF_EE);
    for _ in 0..CASES {
        let measured = rng.gen_range(0.0f64..1e6);
        let bound = rng.gen_range(0.0f64..1e6);
        let slack = rng.gen_range(0.1f64..16.0);
        let check = analysis::BoundCheck::new("prop", measured, bound, slack);
        assert_eq!(check.passed(), measured <= slack * bound);
        assert_eq!(check.passed(), check.ratio() <= 1.0);
    }
}
